package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/db"
	"repro/internal/drc"
	"repro/internal/obs"
	"repro/internal/pao"
)

// Defaults for the zero-value tuning knobs.
const (
	defaultShardClasses    = 8
	defaultShardClusters   = 16
	defaultRequestTimeout  = 60 * time.Second
	defaultHedgeAfter      = 2 * time.Second
	defaultHeartbeatEvery  = 500 * time.Millisecond
	defaultHeartbeatMisses = 3
	// hedgeP99Factor scales the observed p99 shard latency into the hedge
	// delay once hedgeMinSamples latencies are recorded; before that the
	// static HedgeAfter floor applies alone.
	hedgeP99Factor  = 1.5
	hedgeMinSamples = 8
)

// WorkerStatus is one entry of the coordinator's fleet view.
type WorkerStatus struct {
	URL          string
	Up           bool
	Mismatch     bool // design/config identity check failed; never dispatched to
	Misses       int  // consecutive failed heartbeats
	LastSeen     time.Time
	ShardsOK     int
	ShardsFailed int
}

// workerState is the mutable health record behind one WorkerStatus.
type workerState struct {
	url string

	mu           sync.Mutex
	up           bool
	mismatch     bool
	misses       int
	lastSeen     time.Time
	shardsOK     int
	shardsFailed int
}

func (s *workerState) status() WorkerStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return WorkerStatus{
		URL: s.url, Up: s.up, Mismatch: s.mismatch, Misses: s.misses,
		LastSeen: s.lastSeen, ShardsOK: s.shardsOK, ShardsFailed: s.shardsFailed,
	}
}

func (s *workerState) isUp() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.up && !s.mismatch
}

func (s *workerState) isMismatch() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mismatch
}

func (s *workerState) noteResult(ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ok {
		s.shardsOK++
		s.up = true
		s.misses = 0
		s.lastSeen = time.Now()
	} else {
		s.shardsFailed++
	}
}

// Coordinator farms the analysis out to Workers and reassembles the Result.
// Configure the exported fields before Run; zero values select the defaults
// above. A Coordinator runs once — build a fresh one per analysis.
type Coordinator struct {
	Design  *db.Design
	Cfg     pao.Config
	Workers []string // worker base URLs ("host:port" gets "http://" prefixed)

	// Obs receives the dist.* telemetry (shard counters, worker-up gauge,
	// shard latency histogram) when set.
	Obs *obs.Observer
	// NetHook, when set, intercepts every payload crossing the wire at the
	// Site* network fault points (test-only: faultinject.NetHook).
	NetHook func(site, detail string, payload []byte) ([]byte, error)

	// ShardClasses / ShardClusters bound shard sizes: smaller shards mean
	// finer-grained re-dispatch after a worker loss at the cost of more
	// round-trips.
	ShardClasses  int
	ShardClusters int
	// Retry is the per-candidate attempt policy (cliutil jittered backoff).
	// The zero value means 3 attempts, 50ms base, 500ms cap, 0.5 jitter.
	Retry cliutil.RetryPolicy
	// RequestTimeout bounds each individual shard request attempt.
	RequestTimeout time.Duration
	// HedgeAfter is the floor for the hedging delay: a shard still pending
	// after max(HedgeAfter, 1.5 x observed p99 shard latency) is concurrently
	// dispatched to the next candidate, and the first success wins.
	HedgeAfter time.Duration
	// MaxRelocations bounds how many additional candidate workers a shard may
	// be re-dispatched to after its home worker fails (0 means every other
	// worker may be tried). The coordinator itself is the final fallback.
	MaxRelocations int
	// HeartbeatEvery / HeartbeatMisses tune worker-health probing: a worker
	// missing HeartbeatMisses consecutive probes is marked down and skipped
	// by dispatch until a probe succeeds again.
	HeartbeatEvery  time.Duration
	HeartbeatMisses int
	// Parallelism bounds concurrent shard dispatches; 0 means 2 per worker.
	Parallelism int

	client *http.Client
	states []*workerState
	ring   *ring
	reg    *obs.Registry

	// localMu serializes every use of the local fallback analyzer (its lazy
	// net map is not goroutine-safe).
	localMu  sync.Mutex
	local    *pao.Analyzer
	localEng *drc.Engine

	latMu sync.Mutex
	lats  []time.Duration

	shardsDone atomic.Int64

	designHash string
	configFP   string
}

// ShardsDone reports how many shards have completed (successfully, via any
// path) so far — chaos tests poll it to time a mid-run worker kill.
func (c *Coordinator) ShardsDone() int64 { return c.shardsDone.Load() }

// Fleet returns the current per-worker health view.
func (c *Coordinator) Fleet() []WorkerStatus {
	out := make([]WorkerStatus, len(c.states))
	for i, s := range c.states {
		out[i] = s.status()
	}
	return out
}

func (c *Coordinator) init() {
	if c.ShardClasses <= 0 {
		c.ShardClasses = defaultShardClasses
	}
	if c.ShardClusters <= 0 {
		c.ShardClusters = defaultShardClusters
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = defaultRequestTimeout
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = defaultHedgeAfter
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = defaultHeartbeatEvery
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = defaultHeartbeatMisses
	}
	if c.MaxRelocations <= 0 {
		c.MaxRelocations = len(c.Workers)
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 2 * len(c.Workers)
		if c.Parallelism < 1 {
			c.Parallelism = 1
		}
	}
	if c.Retry.Attempts == 0 {
		c.Retry = cliutil.RetryPolicy{
			Attempts: 3, BaseDelay: 50 * time.Millisecond,
			MaxDelay: 500 * time.Millisecond, Jitter: 0.5,
		}
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	c.reg = c.Obs.Reg()
	c.states = make([]*workerState, len(c.Workers))
	for i, u := range c.Workers {
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		c.states[i] = &workerState{url: strings.TrimRight(u, "/")}
	}
	c.ring = newRing(len(c.Workers))
	c.designHash = pao.DesignHash(c.Design)
	c.configFP = pao.ConfigFingerprint(c.Cfg)
}

// localAnalyzer returns the coordinator's own analyzer for fallback compute
// and the final failed-pin recount. Callers hold localMu.
func (c *Coordinator) localAnalyzer() *pao.Analyzer {
	if c.local == nil {
		c.local = pao.NewAnalyzer(c.Design, c.Cfg)
	}
	return c.local
}

// Run executes the distributed analysis. The returned Result is byte-identical
// (as a snapshot) to a single-process RunContext over the same design and
// config; worker loss, slow shards and corrupt responses degrade throughput,
// not the answer. With no workers configured the analysis simply runs locally.
func (c *Coordinator) Run(ctx context.Context) (*pao.Result, error) {
	c.init()
	if len(c.Workers) == 0 {
		c.localMu.Lock()
		defer c.localMu.Unlock()
		return c.localAnalyzer().RunContext(ctx)
	}
	for i := range c.states {
		c.probe(ctx, i)
	}
	c.publishFleet()
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go c.heartbeatLoop(hbCtx)

	// Phase 1: Steps 1-2 sharded by class signature.
	shards := c.analyzeShards()
	parts := make([]*pao.Result, len(shards))
	c.eachShard(ctx, shards, func(i int, sh *shard) {
		v, err := c.dispatchShard(ctx, sh)
		if err != nil {
			return // cancelled; runErr below reports it
		}
		parts[i] = v.(*pao.Result)
	})
	merged := pao.MergeResults(c.Design, parts...)
	pao.SeedDefaultSelections(c.Design, merged)
	if err := ctx.Err(); err != nil {
		merged.Health.MarkCancelled()
		return merged, err
	}

	// Phase 2: Step 3 sharded by cluster key.
	sshards := c.selectShards(merged)
	picks := make([]*selectResponse, len(sshards))
	c.eachShard(ctx, sshards, func(i int, sh *shard) {
		v, err := c.dispatchShard(ctx, sh)
		if err != nil {
			return
		}
		picks[i] = v.(*selectResponse)
	})
	for _, resp := range picks {
		if resp == nil {
			continue
		}
		for _, sel := range resp.Selected {
			merged.Selected[sel[0]] = sel[1]
		}
		for _, sig := range resp.Degraded {
			merged.Health.Degrade(sig)
		}
		for _, e := range resp.Errors {
			merged.Health.Record(fromWireError(e))
		}
	}
	if err := ctx.Err(); err != nil {
		merged.Health.MarkCancelled()
		return merged, err
	}

	// Failed-pin accounting needs every selected via placed together, so it
	// stays coordinator-local on a fresh engine.
	c.localMu.Lock()
	fin := c.localAnalyzer()
	fin.CountFailedPins(merged, fin.GlobalEngine())
	c.localMu.Unlock()
	c.publishFleet()
	if err := ctx.Err(); err != nil {
		merged.Health.MarkCancelled()
		return merged, err
	}
	return merged, nil
}

// shard is one unit of dispatch.
type shard struct {
	phase string // "analyze" | "select"
	id    string
	sigs  []string // analyze: class signatures
	keys  []string // select: cluster keys
	body  []byte   // pre-sealed request frame
	cands []int    // candidate workers, home first
}

// analyzeShards partitions the class signatures: consistent-hash each onto
// its home worker, then chunk each worker's share (kept in design order) into
// ShardClasses-sized shards.
func (c *Coordinator) analyzeShards() []*shard {
	perOwner := make([][]string, len(c.Workers))
	for _, ui := range c.Design.UniqueInstances() {
		sig := ui.Signature()
		w := c.ring.owner(sig)
		perOwner[w] = append(perOwner[w], sig)
	}
	var shards []*shard
	for _, sigs := range perOwner {
		for len(sigs) > 0 {
			n := c.ShardClasses
			if n > len(sigs) {
				n = len(sigs)
			}
			chunk := sigs[:n]
			sigs = sigs[n:]
			body, _ := json.Marshal(analyzeRequest{Sigs: chunk})
			shards = append(shards, &shard{
				phase: "analyze",
				id:    fmt.Sprintf("analyze:%d", len(shards)),
				sigs:  chunk,
				body:  sealFrame(body),
				cands: c.ring.candidates(chunk[0], 1+c.MaxRelocations),
			})
		}
	}
	return shards
}

// selectShards partitions the cluster keys the same way and slices the merged
// classes each shard's clusters need into its request payload.
func (c *Coordinator) selectShards(merged *pao.Result) []*shard {
	clusters := c.Design.Clusters()
	byKey := make(map[string]db.Cluster, len(clusters))
	perOwner := make([][]string, len(c.Workers))
	for _, cl := range clusters {
		k := pao.ClusterKey(cl)
		byKey[k] = cl
		w := c.ring.owner(k)
		perOwner[w] = append(perOwner[w], k)
	}
	var shards []*shard
	for _, keys := range perOwner {
		for len(keys) > 0 {
			n := c.ShardClusters
			if n > len(keys) {
				n = len(keys)
			}
			chunk := keys[:n]
			keys = keys[n:]
			// The DP must see the access patterns of every member instance of
			// every cluster in the shard, wherever its class was analyzed.
			need := make(map[string]bool)
			for _, k := range chunk {
				for _, inst := range byKey[k].Insts {
					if ua := merged.UAFor(inst); ua != nil {
						need[ua.UI.Signature()] = true
					}
				}
			}
			sigs := make([]string, 0, len(need))
			for s := range need {
				sigs = append(sigs, s)
			}
			sort.Strings(sigs)
			var classes bytes.Buffer
			if err := pao.EncodeSnapshot(&classes, c.Design, c.Cfg,
				pao.SliceResult(merged, c.Design, sigs)); err != nil {
				// Encoding a result we just merged cannot fail short of OOM;
				// skip the shard body and let local fallback handle it.
				continue
			}
			body, _ := json.Marshal(selectRequest{Keys: chunk, Classes: classes.Bytes()})
			shards = append(shards, &shard{
				phase: "select",
				id:    fmt.Sprintf("select:%d", len(shards)),
				keys:  chunk,
				body:  sealFrame(body),
				cands: c.ring.candidates(chunk[0], 1+c.MaxRelocations),
			})
		}
	}
	return shards
}

// eachShard runs fn over the shards with bounded parallelism, stopping new
// dispatches once ctx is cancelled.
func (c *Coordinator) eachShard(ctx context.Context, shards []*shard, fn func(i int, sh *shard)) {
	sem := make(chan struct{}, c.Parallelism)
	var wg sync.WaitGroup
	for i, sh := range shards {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, sh *shard) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i, sh)
		}(i, sh)
	}
	wg.Wait()
}

// orderedCandidates returns the shard's candidate workers with known-down
// workers moved to the back (relative order preserved): a heartbeat-detected
// death costs nothing, only an undetected one pays a request timeout.
func (c *Coordinator) orderedCandidates(sh *shard) []int {
	up := make([]int, 0, len(sh.cands))
	var down []int
	for _, w := range sh.cands {
		if c.states[w].isMismatch() {
			continue
		}
		if c.states[w].isUp() {
			up = append(up, w)
		} else {
			down = append(down, w)
		}
	}
	return append(up, down...)
}

// dispatchShard drives one shard to completion: home worker first with
// retries, hedged to the next candidate when slow, relocated on failure, and
// computed locally when every candidate is gone. Only a cancelled context
// makes it return an error.
func (c *Coordinator) dispatchShard(ctx context.Context, sh *shard) (any, error) {
	t0 := time.Now()
	c.reg.Counter("dist.shards.dispatched").Add(1)
	cands := c.orderedCandidates(sh)

	type outcome struct {
		val any
		err error
		w   int
	}
	results := make(chan outcome, len(cands))
	launched := 0
	launch := func() {
		w := cands[launched]
		launched++
		go func() {
			v, err := c.tryWorker(ctx, w, sh)
			results <- outcome{v, err, w}
		}()
	}
	done := func(v any) (any, error) {
		c.shardsDone.Add(1)
		c.observeLatency(time.Since(t0))
		return v, nil
	}
	if len(cands) > 0 {
		launch()
	}
	hedge := time.NewTimer(c.hedgeDelay())
	defer hedge.Stop()
	pending := launched
	for pending > 0 {
		select {
		case out := <-results:
			c.states[out.w].noteResult(out.err == nil)
			if out.err == nil {
				return done(out.val)
			}
			pending--
			if launched < len(cands) && ctx.Err() == nil {
				c.reg.Counter("dist.shards.relocated").Add(1)
				launch()
				pending++
			}
		case <-hedge.C:
			if launched < len(cands) && ctx.Err() == nil {
				c.reg.Counter("dist.shards.hedged").Add(1)
				launch()
				pending++
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// Every candidate failed (or none existed): graceful degradation — the
	// coordinator computes the shard itself. Whatever still fails inside the
	// pipeline lands in Result.Health quarantine, not here.
	c.reg.Counter("dist.shards.local").Add(1)
	v, err := c.localShard(ctx, sh)
	if err != nil {
		return nil, err
	}
	return done(v)
}

// tryWorker sends the shard to one worker under the retry policy, validating
// and decoding the response. All failures are retriable: transient transport
// errors heal, and persistent ones exhaust the policy and move the shard to
// the next candidate.
func (c *Coordinator) tryWorker(ctx context.Context, w int, sh *shard) (any, error) {
	path := pathAnalyze
	if sh.phase == "select" {
		path = pathSelect
	}
	url := c.states[w].url + path
	detail := sh.phase + "/" + sh.id + "/" + c.states[w].url
	var val any
	attempt := 0
	err := cliutil.Retry(ctx, c.Retry, func() error {
		attempt++
		if attempt > 1 {
			c.reg.Counter("dist.shards.retried").Add(1)
		}
		v, err := c.sendOnce(ctx, url, detail, sh)
		if err != nil {
			return err
		}
		val = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return val, nil
}

// sendOnce performs one request attempt: seal (already done), fault-hook,
// POST under the per-attempt deadline, fault-hook the response, open the
// frame, decode per phase.
func (c *Coordinator) sendOnce(ctx context.Context, url, detail string, sh *shard) (any, error) {
	body := sh.body
	if hook := c.NetHook; hook != nil {
		var err error
		if body, err = hook(SiteDispatch, detail, body); err != nil {
			return nil, err
		}
	}
	actx, cancel := context.WithTimeout(ctx, c.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: worker answered %d: %.200s", resp.StatusCode, raw)
	}
	if hook := c.NetHook; hook != nil {
		if raw, err = hook(SiteResponse, detail, raw); err != nil {
			return nil, err
		}
	}
	payload, err := openFrame(raw)
	if err != nil {
		c.reg.Counter("dist.response.corrupt").Add(1)
		return nil, err
	}
	switch sh.phase {
	case "analyze":
		// Decoding revalidates the snapshot checksum plus the design-hash and
		// config fingerprints — a worker computing against different inputs
		// is caught here, not at merge time.
		part, err := pao.DecodeSnapshot(bytes.NewReader(payload), c.Design, c.Cfg)
		if err != nil {
			c.reg.Counter("dist.response.corrupt").Add(1)
			return nil, err
		}
		return part, nil
	default:
		var sel selectResponse
		if err := json.Unmarshal(payload, &sel); err != nil {
			c.reg.Counter("dist.response.corrupt").Add(1)
			return nil, err
		}
		return &sel, nil
	}
}

// localShard computes a shard on the coordinator itself — the last-resort
// path when no worker can. Serialized: the fallback analyzer is shared.
func (c *Coordinator) localShard(ctx context.Context, sh *shard) (any, error) {
	c.localMu.Lock()
	defer c.localMu.Unlock()
	a := c.localAnalyzer()
	if sh.phase == "analyze" {
		return a.AnalyzeClasses(ctx, sh.sigs)
	}
	if c.localEng == nil {
		c.localEng = a.GlobalEngine()
	}
	// Decode the shard's own payload rather than holding a reference to the
	// merged result: local fallback then follows exactly the worker code path.
	var sr selectRequest
	payload, err := openFrame(sh.body)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(payload, &sr); err != nil {
		return nil, err
	}
	classes, err := pao.DecodeSnapshot(bytes.NewReader(sr.Classes), c.Design, c.Cfg)
	if err != nil {
		return nil, err
	}
	picks, health, err := a.SelectClusters(ctx, classes, c.localEng, sh.keys)
	if err != nil {
		return nil, err
	}
	resp := &selectResponse{
		Degraded: health.DegradedClasses(),
		Errors:   toWireErrors(health.Errors()),
	}
	for id, idx := range picks {
		resp.Selected = append(resp.Selected, [2]int{id, idx})
	}
	sort.Slice(resp.Selected, func(a, b int) bool { return resp.Selected[a][0] < resp.Selected[b][0] })
	return resp, nil
}

// observeLatency records a completed shard's wall time for the p99-derived
// hedge delay and the latency histogram.
func (c *Coordinator) observeLatency(d time.Duration) {
	c.reg.Counter("dist.shards.ok").Add(1)
	c.reg.Histogram("dist.shard.latency").Observe(d)
	c.latMu.Lock()
	c.lats = append(c.lats, d)
	c.latMu.Unlock()
}

// hedgeDelay returns the current hedging delay: the static floor until enough
// shard latencies are observed, then max(floor, 1.5 x p99).
func (c *Coordinator) hedgeDelay() time.Duration {
	c.latMu.Lock()
	defer c.latMu.Unlock()
	if len(c.lats) < hedgeMinSamples {
		return c.HedgeAfter
	}
	sorted := append([]time.Duration(nil), c.lats...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	p99 := sorted[len(sorted)*99/100]
	if d := time.Duration(hedgeP99Factor * float64(p99)); d > c.HedgeAfter {
		return d
	}
	return c.HedgeAfter
}

// probe performs one identity-checking health probe of worker i.
func (c *Coordinator) probe(ctx context.Context, i int) {
	st := c.states[i]
	pctx, cancel := context.WithTimeout(ctx, c.RequestTimeout)
	defer cancel()
	ok, mismatch := false, false
	if raw, err := c.pingOnce(pctx, st.url); err == nil {
		var pr pingResponse
		if jerr := json.Unmarshal(raw, &pr); jerr == nil {
			if pr.DesignHash == c.designHash && pr.Config == c.configFP {
				ok = true
			} else {
				mismatch = true
			}
		}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if mismatch {
		st.mismatch = true
		st.up = false
		return
	}
	if ok {
		st.up = true
		st.misses = 0
		st.lastSeen = time.Now()
		return
	}
	st.misses++
	if st.misses >= c.HeartbeatMisses {
		st.up = false
	}
}

// pingOnce fetches the worker's identity document, passing the response
// through the heartbeat fault site.
func (c *Coordinator) pingOnce(ctx context.Context, base string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+pathPing, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: ping answered %d", resp.StatusCode)
	}
	if hook := c.NetHook; hook != nil {
		if raw, err = hook(SiteHeartbeat, base, raw); err != nil {
			return nil, err
		}
	}
	return raw, nil
}

// heartbeatLoop probes every worker on a timer until ctx ends, keeping the
// fleet view current so dispatch can skip known-dead workers immediately.
func (c *Coordinator) heartbeatLoop(ctx context.Context) {
	t := time.NewTicker(c.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			for i := range c.states {
				if c.states[i].isMismatch() {
					continue
				}
				c.probe(ctx, i)
			}
			c.publishFleet()
		}
	}
}

// publishFleet updates the worker-up gauge from the current states.
func (c *Coordinator) publishFleet() {
	up := 0
	for _, s := range c.states {
		if s.isUp() {
			up++
		}
	}
	c.reg.Gauge("dist.workers.up").Set(float64(up))
}
