package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"sort"
	"sync"

	"repro/internal/db"
	"repro/internal/drc"
	"repro/internal/obs"
	"repro/internal/pao"
)

// Worker answers shard requests against its own copy of the design (loaded
// from the same inputs the coordinator used — the shared-volume model, like
// TritonRoute's distributed workers). Workers are stateless between shards:
// every request carries everything the shard needs, which is what makes
// hedging and relocation trivially safe — two workers computing the same
// shard return identical payloads, and a worker killed mid-shard leaves
// nothing to clean up.
type Worker struct {
	Design *db.Design
	Cfg    pao.Config
	// Obs receives worker-side shard counters when set.
	Obs *obs.Observer
	// FaultHook, when set, fires at SiteWorkerShard before each shard is
	// handled (test-only chaos: delays to stretch a shard, panics to exercise
	// the 500-and-survive path).
	FaultHook func(site, detail string)

	// mu serializes shard handling: the analyzer's lazy net map is not
	// goroutine-safe, and shards are large enough that request-level
	// parallelism would buy nothing over the analyzer's own worker pool.
	mu       sync.Mutex
	analyzer *pao.Analyzer
	eng      *drc.Engine

	designHash string
	configFP   string
}

// NewWorker builds a worker for the design under cfg.
func NewWorker(d *db.Design, cfg pao.Config) *Worker {
	return &Worker{
		Design:     d,
		Cfg:        cfg,
		designHash: pao.DesignHash(d),
		configFP:   pao.ConfigFingerprint(cfg),
	}
}

// Handler returns the worker's HTTP surface.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(pathPing, w.handlePing)
	mux.HandleFunc(pathAnalyze, w.recovered("analyze", w.handleAnalyze))
	mux.HandleFunc(pathSelect, w.recovered("select", w.handleSelect))
	return mux
}

// lazyAnalyzer returns the worker's analyzer, created on first use and reused
// across shards so the shared ViaCache stays warm for this worker's arc of
// the signature ring. Callers hold w.mu.
func (w *Worker) lazyAnalyzer() *pao.Analyzer {
	if w.analyzer == nil {
		w.analyzer = pao.NewAnalyzer(w.Design, w.Cfg)
	}
	return w.analyzer
}

// lazyEngine returns the fixed-design engine for Step-3 shards. Select shards
// only read it (the failed-pin recount, which mutates, is coordinator-local),
// so one engine serves every request. Callers hold w.mu.
func (w *Worker) lazyEngine() *drc.Engine {
	if w.eng == nil {
		w.eng = w.lazyAnalyzer().GlobalEngine()
	}
	return w.eng
}

// recovered wraps a shard handler with panic recovery: an escaped panic
// (injected or real) answers 500 and the worker keeps serving — the
// coordinator's retry machinery owns the failure, not the process lifecycle.
func (w *Worker) recovered(phase string, h http.HandlerFunc) http.HandlerFunc {
	return func(rw http.ResponseWriter, req *http.Request) {
		defer func() {
			if r := recover(); r != nil {
				w.Obs.Reg().Counter("dist.worker.panics").Add(1)
				http.Error(rw, fmt.Sprintf("shard panic: %v\n%s", r, debug.Stack()),
					http.StatusInternalServerError)
			}
		}()
		if hook := w.FaultHook; hook != nil {
			hook(SiteWorkerShard, phase)
		}
		h(rw, req)
	}
}

func (w *Worker) handlePing(rw http.ResponseWriter, req *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(pingResponse{
		DesignName: w.Design.Name,
		DesignHash: w.designHash,
		Config:     w.configFP,
	})
}

// readFramed reads and unwraps a framed request body; a corrupt frame is the
// client's problem (400), not the worker's.
func readFramed(rw http.ResponseWriter, req *http.Request) ([]byte, bool) {
	raw, err := io.ReadAll(req.Body)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	payload, err := openFrame(raw)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	return payload, true
}

func writeFramed(rw http.ResponseWriter, payload []byte) {
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Write(sealFrame(payload))
}

func (w *Worker) handleAnalyze(rw http.ResponseWriter, req *http.Request) {
	payload, ok := readFramed(rw, req)
	if !ok {
		return
	}
	var ar analyzeRequest
	if err := json.Unmarshal(payload, &ar); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	part, err := w.lazyAnalyzer().AnalyzeClasses(req.Context(), ar.Sigs)
	if err != nil {
		// Unknown signatures (protocol mismatch) and cancelled shards both
		// surface as errors; neither may be merged as a success.
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	var snap bytes.Buffer
	if err := pao.EncodeSnapshot(&snap, w.Design, w.Cfg, part); err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Obs.Reg().Counter("dist.worker.shards.analyze").Add(1)
	writeFramed(rw, snap.Bytes())
}

func (w *Worker) handleSelect(rw http.ResponseWriter, req *http.Request) {
	payload, ok := readFramed(rw, req)
	if !ok {
		return
	}
	var sr selectRequest
	if err := json.Unmarshal(payload, &sr); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	// The shipped classes ride the snapshot format, so checksum, design hash
	// and config fingerprint are validated before any selection runs.
	classes, err := pao.DecodeSnapshot(bytes.NewReader(sr.Classes), w.Design, w.Cfg)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	picks, health, err := w.lazyAnalyzer().SelectClusters(req.Context(), classes, w.lazyEngine(), sr.Keys)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := selectResponse{
		Degraded: health.DegradedClasses(),
		Errors:   toWireErrors(health.Errors()),
	}
	for id, idx := range picks {
		resp.Selected = append(resp.Selected, [2]int{id, idx})
	}
	sort.Slice(resp.Selected, func(a, b int) bool { return resp.Selected[a][0] < resp.Selected[b][0] })
	body, err := json.Marshal(resp)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Obs.Reg().Counter("dist.worker.shards.select").Add(1)
	writeFramed(rw, body)
}
