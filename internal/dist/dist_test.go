package dist

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/db"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/pao"
	"repro/internal/suite"
)

func distDesign(t *testing.T) *db.Design {
	t.Helper()
	d, err := suite.Generate(suite.Testcases[0].Scale(0.01).WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// startWorker spins up an in-process worker server over its own copy of the
// design (regenerated from the same spec — the shared-volume model).
func startWorker(t *testing.T, cfg pao.Config) (*Worker, *httptest.Server) {
	t.Helper()
	w := NewWorker(distDesign(t), cfg)
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	return w, srv
}

func snapshotBytes(t *testing.T, d *db.Design, cfg pao.Config, res *pao.Result) []byte {
	t.Helper()
	res.Stats = res.Stats.Counts()
	var buf bytes.Buffer
	if err := pao.EncodeSnapshot(&buf, d, cfg, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fastCoordinator returns a coordinator tuned for test latencies: quick
// retries, quick heartbeats, small shards so relocation has granularity.
func fastCoordinator(d *db.Design, cfg pao.Config, workers []string) *Coordinator {
	return &Coordinator{
		Design: d, Cfg: cfg, Workers: workers,
		Obs:            obs.NewObserver("test"),
		ShardClasses:   4,
		ShardClusters:  8,
		Retry:          cliutil.RetryPolicy{Attempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Jitter: 0.5},
		RequestTimeout: 5 * time.Second,
		HedgeAfter:     10 * time.Second, // effectively off unless a test lowers it
		HeartbeatEvery: 50 * time.Millisecond,
	}
}

func TestFrameRoundTripAndCorruption(t *testing.T) {
	payload := []byte("shard payload")
	framed := sealFrame(payload)
	got, err := openFrame(framed)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip failed: %q err %v", got, err)
	}
	for _, flip := range []int{0, len(frameMagic), len(framed) - 1} {
		bad := append([]byte(nil), framed...)
		bad[flip] ^= 0x01
		if _, err := openFrame(bad); err == nil {
			t.Fatalf("corruption at byte %d not detected", flip)
		}
	}
	if _, err := openFrame(framed[:10]); err == nil {
		t.Fatal("truncated frame not detected")
	}
}

// TestDistributedEquivalence is the core tentpole invariant: a two-worker
// distributed run produces a snapshot byte-identical to the single-process
// run.
func TestDistributedEquivalence(t *testing.T) {
	d := distDesign(t)
	cfg := pao.DefaultConfig()
	want := snapshotBytes(t, d, cfg, pao.NewAnalyzer(d, cfg).Run())

	_, s1 := startWorker(t, cfg)
	_, s2 := startWorker(t, cfg)
	c := fastCoordinator(d, cfg, []string{s1.URL, s2.URL})
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := snapshotBytes(t, d, cfg, res)
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed snapshot differs from single-process: %d vs %d bytes", len(got), len(want))
	}

	m := c.Obs.Reg().Snapshot()
	if m.Counters["dist.shards.ok"] == 0 {
		t.Error("no shards completed through the dispatch path")
	}
	if m.Counters["dist.shards.local"] != 0 {
		t.Errorf("healthy fleet must not fall back locally, got %d local shards",
			m.Counters["dist.shards.local"])
	}
	okShards := 0
	for _, ws := range c.Fleet() {
		if !ws.Up {
			t.Errorf("worker %s not up after a clean run", ws.URL)
		}
		okShards += ws.ShardsOK
	}
	if okShards == 0 {
		t.Error("fleet view records no completed shards")
	}
}

// TestDistributedEquivalenceUnderFaults re-runs the invariant with the
// network fault injector tearing at the wire: dropped connections, corrupted
// responses and jittered delays on dispatch and response paths. The retry,
// corrupt-rejection and relocation machinery must absorb all of it without
// changing a byte of the answer.
func TestDistributedEquivalenceUnderFaults(t *testing.T) {
	d := distDesign(t)
	cfg := pao.DefaultConfig()
	want := snapshotBytes(t, d, cfg, pao.NewAnalyzer(d, cfg).Run())

	_, s1 := startWorker(t, cfg)
	_, s2 := startWorker(t, cfg)
	inj := faultinject.New().
		Add(&faultinject.Fault{Site: SiteDispatch, Call: 1, Kind: faultinject.ConnDrop, Note: "first dispatch dropped"}).
		Add(&faultinject.Fault{Site: SiteDispatch, Call: 4, Kind: faultinject.ConnDrop}).
		Add(&faultinject.Fault{Site: SiteResponse, Call: 2, Kind: faultinject.Corrupt}).
		Add(&faultinject.Fault{Site: SiteResponse, Call: 5, Kind: faultinject.Corrupt}).
		Add(&faultinject.Fault{Site: SiteDispatch, Kind: faultinject.DelayJitter, Sleep: 2 * time.Millisecond, Jitter: 0.5, Call: 3}).
		Add(&faultinject.Fault{Site: SiteHeartbeat, Call: 1, Kind: faultinject.ConnDrop})
	c := fastCoordinator(d, cfg, []string{s1.URL, s2.URL})
	c.NetHook = inj.NetHook()
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := snapshotBytes(t, d, cfg, res)
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot under faults differs from single-process: %d vs %d bytes", len(got), len(want))
	}
	if inj.FiredCount() == 0 {
		t.Fatal("no faults fired; the test is vacuous")
	}
	m := c.Obs.Reg().Snapshot()
	if m.Counters["dist.shards.retried"] == 0 {
		t.Error("injected conn-drops must force retries")
	}
	if m.Counters["dist.response.corrupt"] == 0 {
		t.Error("injected corruption must be detected and counted")
	}
	if !res.Health.OK() {
		t.Errorf("network faults must degrade transport, never the result: %s", res.Health)
	}
}

// TestDistributedAllWorkersUnreachable pins graceful degradation: with every
// configured worker unreachable, the coordinator computes all shards locally
// and the answer is still byte-identical.
func TestDistributedAllWorkersUnreachable(t *testing.T) {
	d := distDesign(t)
	cfg := pao.DefaultConfig()
	want := snapshotBytes(t, d, cfg, pao.NewAnalyzer(d, cfg).Run())

	// A server that is already closed: connection refused, instantly.
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()

	c := fastCoordinator(d, cfg, []string{deadURL})
	c.Retry = cliutil.RetryPolicy{Attempts: 1}
	c.RequestTimeout = 500 * time.Millisecond
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := snapshotBytes(t, d, cfg, res)
	if !bytes.Equal(got, want) {
		t.Fatalf("local-fallback snapshot differs: %d vs %d bytes", len(got), len(want))
	}
	m := c.Obs.Reg().Snapshot()
	if m.Counters["dist.shards.local"] == 0 {
		t.Error("unreachable fleet must fall back to local compute")
	}
	if !res.Health.OK() {
		t.Errorf("worker loss must not quarantine anything: %s", res.Health)
	}
}

// TestDistributedMismatchedWorkerExcluded: a worker serving a different
// design fails the identity probe, is never dispatched to, and the run
// completes correctly on the remaining fleet.
func TestDistributedMismatchedWorkerExcluded(t *testing.T) {
	d := distDesign(t)
	cfg := pao.DefaultConfig()
	want := snapshotBytes(t, d, cfg, pao.NewAnalyzer(d, cfg).Run())

	other, err := suite.Generate(suite.Testcases[0].Scale(0.01).WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	wrong := httptest.NewServer(NewWorker(other, cfg).Handler())
	defer wrong.Close()
	_, good := startWorker(t, cfg)

	c := fastCoordinator(d, cfg, []string{wrong.URL, good.URL})
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := snapshotBytes(t, d, cfg, res)
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot with mismatched worker differs: %d vs %d bytes", len(got), len(want))
	}
	var sawMismatch bool
	for _, ws := range c.Fleet() {
		if ws.URL == wrong.URL {
			sawMismatch = ws.Mismatch
			if ws.ShardsOK > 0 {
				t.Error("mismatched worker must never complete a shard")
			}
		}
	}
	if !sawMismatch {
		t.Error("fleet view must flag the mismatched worker")
	}
}

// TestDistributedHedgingFiresOnSlowWorker: a worker delayed far past the
// hedge delay loses the race to the hedged candidate; the run stays correct
// and the hedge counter records the event.
func TestDistributedHedgingFiresOnSlowWorker(t *testing.T) {
	d := distDesign(t)
	cfg := pao.DefaultConfig()
	want := snapshotBytes(t, d, cfg, pao.NewAnalyzer(d, cfg).Run())

	slow, s1 := startWorker(t, cfg)
	// Delay every shard on worker 1 well past the hedge threshold.
	slowInj := faultinject.New().
		Add(&faultinject.Fault{Site: SiteWorkerShard, Kind: faultinject.Delay, Sleep: 400 * time.Millisecond})
	slow.FaultHook = slowInj.SiteHook()
	_, s2 := startWorker(t, cfg)

	c := fastCoordinator(d, cfg, []string{s1.URL, s2.URL})
	c.HedgeAfter = 30 * time.Millisecond
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := snapshotBytes(t, d, cfg, res)
	if !bytes.Equal(got, want) {
		t.Fatalf("hedged snapshot differs: %d vs %d bytes", len(got), len(want))
	}
	if c.Obs.Reg().Snapshot().Counters["dist.shards.hedged"] == 0 {
		t.Error("a 400ms shard against a 30ms hedge threshold must hedge")
	}
}

// TestDistributedCancellation: cancelling the coordinator's context mid-run
// returns the context error and a partial result with Cancelled health, never
// a hang.
func TestDistributedCancellation(t *testing.T) {
	d := distDesign(t)
	cfg := pao.DefaultConfig()
	_, s1 := startWorker(t, cfg)
	c := fastCoordinator(d, cfg, []string{s1.URL})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := c.Run(ctx)
	if err == nil {
		t.Fatal("cancelled run must return an error")
	}
	if res == nil || !res.Health.Cancelled() {
		t.Fatal("cancelled run must return a partial result with Cancelled health")
	}
}

func TestCoordinatorNoWorkersRunsLocally(t *testing.T) {
	d := distDesign(t)
	cfg := pao.DefaultConfig()
	want := snapshotBytes(t, d, cfg, pao.NewAnalyzer(d, cfg).Run())
	c := &Coordinator{Design: d, Cfg: cfg}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := snapshotBytes(t, d, cfg, res); !bytes.Equal(got, want) {
		t.Fatal("zero-worker coordinator must match the single-process run")
	}
}
