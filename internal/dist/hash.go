package dist

// Consistent hashing for shard placement. Class signatures are
// translation-invariant, so every member of a class produces identical
// via-drop cache keys — routing a signature to the same worker run after run
// keeps that worker's ViaCache warm for exactly its share of the key space,
// and losing a worker remaps only that worker's arc of the ring instead of
// reshuffling everything.

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringReplicas is the number of virtual nodes per worker: enough to spread
// small fleets evenly without making candidate walks expensive.
const ringReplicas = 64

type ringPoint struct {
	hash   uint64
	worker int // index into the worker list
}

// ring is a consistent-hash ring over worker indexes.
type ring struct {
	points []ringPoint
	n      int // distinct workers
}

// hash64 hashes s onto the ring. FNV-1a alone has almost no avalanche on
// short, similar strings ("w0#1" vs "w0#2" differ in a handful of bits, and
// all of a worker's virtual nodes land in one tiny arc), which degenerates
// the ring into a single owner — so the FNV sum is finished with the
// murmur3 fmix64 bit mixer to spread points uniformly.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// newRing builds a ring over n workers identified by their list index. The
// virtual-node keys use the index, not the URL, so the mapping depends only
// on fleet size and order — a worker restarting on a new port keeps its arc.
func newRing(n int) *ring {
	r := &ring{n: n}
	for w := 0; w < n; w++ {
		for rep := 0; rep < ringReplicas; rep++ {
			r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("w%d#%d", w, rep)), w})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// candidates returns up to max distinct workers for key, in ring order
// starting at the key's home worker — the dispatch preference order: home
// first (cache warmth), then the workers that would inherit the key if the
// home died.
func (r *ring) candidates(key string, max int) []int {
	if r.n == 0 || len(r.points) == 0 {
		return nil
	}
	if max > r.n {
		max = r.n
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int]bool, max)
	var out []int
	for i := 0; len(out) < max && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, p.worker)
		}
	}
	return out
}

// owner returns the home worker for key.
func (r *ring) owner(key string) int {
	c := r.candidates(key, 1)
	if len(c) == 0 {
		return -1
	}
	return c[0]
}
