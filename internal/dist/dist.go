// Package dist distributes the PAAF analysis across worker processes. The
// pipeline is embarrassingly parallel at two grains — unique-instance classes
// for Steps 1-2 and row clusters for Step 3 — so a Coordinator partitions
// both (consistent-hash on class signature and cluster key, chunked into
// shards) across Workers reached over an HTTP/JSON protocol whose payloads
// reuse the pao snapshot wire format, then merges the partial Results into
// one whole that is byte-identical to a single-process run.
//
// The robustness machinery is the point of the package, not the fan-out:
//
//   - every shard request runs under a per-attempt deadline with
//     cliutil.Retry jittered backoff;
//   - a slow shard is hedged to the next candidate worker after a
//     p99-derived delay, and a dead worker's shards are re-dispatched to
//     survivors (bounded by MaxRelocations);
//   - every payload crossing the wire is checksum-framed; a corrupt response
//     is rejected and retried, never merged;
//   - a background heartbeat tracks per-worker health feeding the Fleet()
//     view, so dispatch skips workers already known to be down;
//   - when no worker can run a shard, the coordinator computes it locally,
//     and whatever still fails lands in the Result.Health quarantine — the
//     run degrades, it does not die.
//
// Fault sites (internal/faultinject NetHook on the coordinator,
// SiteHook on the worker) cover the failure matrix in tests:
// SiteDispatch/SiteResponse for conn-drop, delay and corruption in either
// direction, SiteHeartbeat for partitioned health checks, and
// SiteWorkerShard for worker-side crashes mid-shard.
package dist

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/pao"
)

// Fault-hook site names.
const (
	// SiteDispatch fires on the coordinator with each outbound shard request
	// body; detail is "<phase>/<shard>/<worker URL>".
	SiteDispatch = "dist.dispatch"
	// SiteResponse fires on the coordinator with each inbound shard response
	// body, before the frame is opened; same detail as SiteDispatch.
	SiteResponse = "dist.response"
	// SiteHeartbeat fires on the coordinator around each health probe; detail
	// is the worker URL.
	SiteHeartbeat = "dist.heartbeat"
	// SiteWorkerShard fires on the worker before handling a shard request;
	// detail is "analyze" or "select". A panic here exercises the worker-side
	// recovery; a delay stretches the shard for hedging tests.
	SiteWorkerShard = "dist.worker.shard"
)

// Wire paths served by Worker.Handler.
const (
	pathPing    = "/v1/ping"
	pathAnalyze = "/v1/analyze"
	pathSelect  = "/v1/select"
)

// ErrFrameCorrupt marks a wire frame that failed checksum validation: the
// payload was damaged in flight. Corruption is indistinguishable from a bad
// peer, so callers retry elsewhere rather than trusting a re-read.
var ErrFrameCorrupt = errors.New("dist: payload frame corrupt")

// Frame layout: 8-byte magic, payload, 32-byte SHA-256 over magic+payload.
// Analyze responses carry a pao snapshot that is checksummed on its own, but
// framing every body uniformly means the coordinator rejects corruption in a
// single place regardless of what the payload holds.
const frameMagic = "PAODIST1"

// sealFrame wraps payload in the checksummed wire frame.
func sealFrame(payload []byte) []byte {
	buf := make([]byte, 0, len(frameMagic)+len(payload)+sha256.Size)
	buf = append(buf, frameMagic...)
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// openFrame validates and unwraps a wire frame.
func openFrame(raw []byte) ([]byte, error) {
	if len(raw) < len(frameMagic)+sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the fixed framing", ErrFrameCorrupt, len(raw))
	}
	body, sum := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	if string(body[:len(frameMagic)]) != frameMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrFrameCorrupt)
	}
	if want := sha256.Sum256(body); !bytes.Equal(sum, want[:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrFrameCorrupt)
	}
	return body[len(frameMagic):], nil
}

// pingResponse identifies a worker: shard dispatch refuses workers whose
// design or config does not match the coordinator's.
type pingResponse struct {
	DesignName string `json:"design_name"`
	DesignHash string `json:"design_hash"`
	Config     string `json:"config"`
}

// analyzeRequest asks a worker to run Steps 1-2 for a class-signature subset.
type analyzeRequest struct {
	Sigs []string `json:"sigs"`
}

// The analyze response payload is the partial-result snapshot itself
// (pao.EncodeSnapshot bytes): decode on the coordinator revalidates the
// checksum, design hash and config fingerprint for free.

// selectRequest asks a worker to run the Step-3 DP for a cluster-key subset.
// Classes carries the merged classes the shard's clusters need, sliced into a
// partial-result snapshot — the DP must see the access patterns of every
// member instance, wherever its class was analyzed.
type selectRequest struct {
	Keys    []string `json:"keys"`
	Classes []byte   `json:"classes"`
}

// selectResponse returns the picks plus whatever degradation the DP suffered,
// so worker-side quarantine folds into the coordinator's Health exactly as a
// local run's would.
type selectResponse struct {
	Selected [][2]int    `json:"selected"` // (instance ID, pattern index), sorted by ID
	Degraded []string    `json:"degraded,omitempty"`
	Errors   []wireError `json:"errors,omitempty"`
}

// wireError is a pao.PipelineError flattened for the wire (Recovered is
// stringified, exactly as snapshot health encoding does).
type wireError struct {
	Step      string `json:"step"`
	Signature string `json:"sig,omitempty"`
	Pin       string `json:"pin,omitempty"`
	Recovered string `json:"recovered"`
	Stack     string `json:"stack,omitempty"`
}

func toWireErrors(errs []*pao.PipelineError) []wireError {
	out := make([]wireError, 0, len(errs))
	for _, e := range errs {
		out = append(out, wireError{
			Step: string(e.Step), Signature: e.Signature, Pin: e.Pin,
			Recovered: fmt.Sprint(e.Recovered), Stack: e.Stack,
		})
	}
	return out
}

func fromWireError(e wireError) *pao.PipelineError {
	return &pao.PipelineError{
		Step: pao.Step(e.Step), Signature: e.Signature, Pin: e.Pin,
		Recovered: e.Recovered, Stack: e.Stack,
	}
}
