package lef

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tech"
)

// FuzzParse drives the LEF reader with mutated inputs: it must never panic,
// and any library it accepts must survive re-serialization.
func FuzzParse(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, tech.N45(), testMasters()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("END LIBRARY\n")
	f.Add("LAYER M1\n TYPE ROUTING ;\nEND M1\nEND LIBRARY\n")
	f.Add("MACRO X\n SIZE 1 BY 2 ;\nEND X\nEND LIBRARY\n")
	f.Add("VIA V DEFAULT\nEND V\nEND LIBRARY\n")
	f.Add("# comment only\n")
	// Hardening corpus: hostile numbers and units the parser must reject
	// without panicking (see TestParseRejectsHostileInput).
	f.Add("LAYER M1\n TYPE ROUTING ;\n PITCH NaN ;\nEND M1\n")
	f.Add("LAYER M1\n TYPE ROUTING ;\n WIDTH -Inf ;\nEND M1\n")
	f.Add("SITE core\n SIZE 1e300 BY -1e300 ;\nEND core\n")
	f.Add("UNITS\n DATABASE MICRONS -100 ;\nEND UNITS\n")
	f.Add("UNITS\n DATABASE MICRONS 0.5 ;\nEND UNITS\n")
	f.Fuzz(func(t *testing.T, src string) {
		lib, err := Parse(strings.NewReader(src))
		if err != nil || lib == nil {
			return
		}
		// Anything accepted must be writable (vias referencing layers the
		// input never declared are legitimately rejected by the writer, so
		// only structural panics count as failures here).
		var buf bytes.Buffer
		_ = Write(&buf, lib.Tech, lib.Masters)
	})
}
