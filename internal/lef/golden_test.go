package lef

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tech"
)

// TestGoldenLEF pins the exact serialized form of the 45 nm node so
// accidental format drift (which would silently invalidate externally shared
// testcases) fails loudly. Regenerate with -update after intentional
// changes.
func TestGoldenLEF(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, tech.N45(), testMasters()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "n45.lef.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("LEF output drifted from golden file (UPDATE_GOLDEN=1 to accept)\ngot %d bytes, want %d", buf.Len(), len(want))
	}
}
