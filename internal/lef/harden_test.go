package lef

import (
	"strings"
	"testing"
)

// TestParseRejectsHostileInput pins the input-hardening bounds: oversized
// tokens, non-finite or absurd numbers, and out-of-range unit declarations
// must come back as errors, never as a half-parsed library.
func TestParseRejectsHostileInput(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"giant token", "MACRO " + strings.Repeat("a", maxTokenLen+1) + "\n", "byte limit"},
		{"nan pitch", "LAYER M1\n TYPE ROUTING ;\n PITCH NaN ;\nEND M1\n", "non-finite"},
		{"inf width", "LAYER M1\n TYPE ROUTING ;\n WIDTH +Inf ;\nEND M1\n", "non-finite"},
		{"huge coordinate", "SITE core\n SIZE 1e300 BY 1 ;\nEND core\n", "exceeds"},
		{"negative dbu", "UNITS\n DATABASE MICRONS -100 ;\nEND UNITS\n", "DATABASE MICRONS"},
		{"zero dbu", "UNITS\n DATABASE MICRONS 0 ;\nEND UNITS\n", "DATABASE MICRONS"},
		{"fractional dbu", "UNITS\n DATABASE MICRONS 100.5 ;\nEND UNITS\n", "DATABASE MICRONS"},
		{"oversized dbu", "UNITS\n DATABASE MICRONS 1e12 ;\nEND UNITS\n", "exceeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("Parse accepted hostile input %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Parse error = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

// TestParseAcceptsBoundaryValues checks the limits do not reject legitimate
// values sitting just inside them.
func TestParseAcceptsBoundaryValues(t *testing.T) {
	src := "UNITS\n DATABASE MICRONS 2000 ;\nEND UNITS\nSITE core\n SIZE 0.19 BY 1.4 ;\nEND core\nEND LIBRARY\n"
	lib, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse rejected legitimate input: %v", err)
	}
	if lib.Tech.DBUPerMicron != 2000 {
		t.Fatalf("DBUPerMicron = %d, want 2000", lib.Tech.DBUPerMicron)
	}
	if lib.Tech.SiteWidth != 380 {
		t.Fatalf("SiteWidth = %d, want 380", lib.Tech.SiteWidth)
	}
}
