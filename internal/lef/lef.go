// Package lef reads and writes the LEF subset the pin access flow needs:
// units, sites, routing and cut layers with their design rules, fixed via
// definitions, and macros with pins and obstructions. The dialect follows
// LEF 5.8 closely enough that the files are readable by standard tooling,
// while staying self-contained (no external parser dependencies — the paper's
// flow consumed industry LEF, which we replicate with this hand-rolled
// reader/writer).
package lef

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/tech"
)

// Library is the parsed content of a LEF file.
type Library struct {
	Tech    *tech.Technology
	Masters []*db.Master
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

// Write emits a LEF library for the technology and masters.
func Write(w io.Writer, t *tech.Technology, masters []*db.Master) error {
	bw := bufio.NewWriter(w)
	um := func(v int64) string { return formatMicrons(v, t.DBUPerMicron) }

	fmt.Fprintf(bw, "VERSION 5.8 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n")
	fmt.Fprintf(bw, "UNITS\n  DATABASE MICRONS %d ;\nEND UNITS\n\n", t.DBUPerMicron)
	fmt.Fprintf(bw, "SITE core\n  CLASS CORE ;\n  SIZE %s BY %s ;\nEND core\n\n", um(t.SiteWidth), um(t.SiteHeight))

	for i, l := range t.Metals {
		fmt.Fprintf(bw, "LAYER %s\n  TYPE ROUTING ;\n  DIRECTION %s ;\n", l.Name, l.Dir)
		fmt.Fprintf(bw, "  PITCH %s ;\n  WIDTH %s ;\n  MINWIDTH %s ;\n", um(l.Pitch), um(l.Width), um(l.MinWid))
		if l.Area > 0 {
			// LEF AREA is in square microns.
			fmt.Fprintf(bw, "  AREA %s ;\n", formatArea(l.Area, t.DBUPerMicron))
		}
		if l.Step.Enabled() {
			fmt.Fprintf(bw, "  MINSTEP %s MAXEDGES %d ;\n", um(l.Step.MinStepLength), l.Step.MaxEdges)
		}
		if l.EncArea > 0 {
			fmt.Fprintf(bw, "  MINENCLOSEDAREA %s ;\n", formatArea(l.EncArea, t.DBUPerMicron))
		}
		if l.Corner.Enabled() {
			fmt.Fprintf(bw, "  CORNERSPACING %s WIDTH %s ;\n", um(l.Corner.Spacing), um(l.Corner.EligibleWidth))
		}
		if l.EOL.Enabled() {
			fmt.Fprintf(bw, "  SPACING %s ENDOFLINE %s WITHIN %s ;\n", um(l.EOL.EOLSpace), um(l.EOL.EOLWidth), um(l.EOL.EOLWithin))
		}
		if len(l.Spacing.Widths) > 0 {
			fmt.Fprintf(bw, "  SPACINGTABLE\n    PARALLELRUNLENGTH")
			for _, p := range l.Spacing.PRLs {
				fmt.Fprintf(bw, " %s", um(p))
			}
			for r, wd := range l.Spacing.Widths {
				fmt.Fprintf(bw, "\n    WIDTH %s", um(wd))
				for c := range l.Spacing.PRLs {
					fmt.Fprintf(bw, " %s", um(l.Spacing.Spacing[r][c]))
				}
			}
			fmt.Fprintf(bw, " ;\n")
		}
		fmt.Fprintf(bw, "END %s\n\n", l.Name)
		if i < len(t.Cuts) {
			c := t.Cuts[i]
			fmt.Fprintf(bw, "LAYER %s\n  TYPE CUT ;\n  WIDTH %s ;\n  SPACING %s ;\nEND %s\n\n",
				c.Name, um(c.Width), um(c.Spacing), c.Name)
		}
	}

	for _, v := range t.Vias {
		bot := t.Metal(v.CutBelow)
		cut := t.Cut(v.CutBelow)
		top := t.Metal(v.CutBelow + 1)
		if bot == nil || cut == nil || top == nil {
			return fmt.Errorf("lef: via %q references layers the technology lacks (cut below metal %d)", v.Name, v.CutBelow)
		}
		fmt.Fprintf(bw, "VIA %s DEFAULT\n", v.Name)
		writeViaLayer(bw, bot.Name, v.BotEnc, t.DBUPerMicron)
		fmt.Fprintf(bw, "  LAYER %s ;\n", cut.Name)
		for _, c := range v.Cuts {
			fmt.Fprintf(bw, "    RECT %s %s %s %s ;\n",
				formatMicrons(c.XL, t.DBUPerMicron), formatMicrons(c.YL, t.DBUPerMicron),
				formatMicrons(c.XH, t.DBUPerMicron), formatMicrons(c.YH, t.DBUPerMicron))
		}
		writeViaLayer(bw, top.Name, v.TopEnc, t.DBUPerMicron)
		fmt.Fprintf(bw, "END %s\n\n", v.Name)
	}

	for _, m := range masters {
		if err := writeMacro(bw, m, t); err != nil {
			return err
		}
	}
	fmt.Fprintf(bw, "END LIBRARY\n")
	return bw.Flush()
}

func writeViaLayer(w io.Writer, layer string, r geom.Rect, dbu int64) {
	fmt.Fprintf(w, "  LAYER %s ;\n    RECT %s %s %s %s ;\n", layer,
		formatMicrons(r.XL, dbu), formatMicrons(r.YL, dbu), formatMicrons(r.XH, dbu), formatMicrons(r.YH, dbu))
}

func writeMacro(w io.Writer, m *db.Master, t *tech.Technology) error {
	um := func(v int64) string { return formatMicrons(v, t.DBUPerMicron) }
	fmt.Fprintf(w, "MACRO %s\n  CLASS %s ;\n  ORIGIN 0 0 ;\n  SIZE %s BY %s ;\n  SYMMETRY X Y ;\n  SITE core ;\n",
		m.Name, m.Class, um(m.Size.X), um(m.Size.Y))
	for _, p := range m.Pins {
		fmt.Fprintf(w, "  PIN %s\n    DIRECTION %s ;\n    USE %s ;\n    PORT\n", p.Name, p.Dir, p.Use)
		writeShapes(w, p.Shapes, t, "      ")
		fmt.Fprintf(w, "    END\n  END %s\n", p.Name)
	}
	if len(m.Obs) > 0 {
		fmt.Fprintf(w, "  OBS\n")
		writeShapes(w, m.Obs, t, "    ")
		fmt.Fprintf(w, "  END\n")
	}
	fmt.Fprintf(w, "END %s\n\n", m.Name)
	return nil
}

func writeShapes(w io.Writer, shapes []db.Shape, t *tech.Technology, indent string) {
	um := func(v int64) string { return formatMicrons(v, t.DBUPerMicron) }
	cur := -1
	for _, s := range shapes {
		if s.Layer != cur {
			fmt.Fprintf(w, "%sLAYER %s ;\n", indent, t.Metal(s.Layer).Name)
			cur = s.Layer
		}
		fmt.Fprintf(w, "%s  RECT %s %s %s %s ;\n", indent, um(s.Rect.XL), um(s.Rect.YL), um(s.Rect.XH), um(s.Rect.YH))
	}
}

// formatMicrons renders a DBU value in microns without trailing zeros.
func formatMicrons(v, dbu int64) string {
	f := float64(v) / float64(dbu)
	s := strconv.FormatFloat(f, 'f', 6, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

func formatArea(areaDBU2, dbu int64) string {
	f := float64(areaDBU2) / (float64(dbu) * float64(dbu))
	s := strconv.FormatFloat(f, 'f', 9, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

// Input hardening bounds. LEF/DEF are machine-written formats; any token
// past these limits is a corrupt or adversarial file, not a real library,
// and rejecting it early keeps a bad input from ballooning memory or
// overflowing DBU arithmetic downstream.
const (
	// maxTokenLen bounds one identifier/number token.
	maxTokenLen = 4096
	// maxTokens bounds the whole token stream (~64M tokens is far past the
	// largest full-scale generated testcase).
	maxTokens = 1 << 26
	// maxCoordMicrons bounds any micron-valued number; one metre of silicon
	// still converts to DBU without approaching int64 overflow.
	maxCoordMicrons = 1e9
	// maxDBUPerMicron bounds UNITS DATABASE MICRONS.
	maxDBUPerMicron = 1e9
)

// parser is a whitespace tokenizer over LEF/DEF-style input.
type parser struct {
	toks []string
	pos  int
}

func newParser(r io.Reader) (*parser, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var toks []string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		for _, f := range strings.Fields(line) {
			if len(f) > maxTokenLen {
				return nil, fmt.Errorf("lef: token of %d bytes exceeds the %d-byte limit", len(f), maxTokenLen)
			}
			toks = append(toks, f)
		}
		if len(toks) > maxTokens {
			return nil, fmt.Errorf("lef: input exceeds %d tokens", maxTokens)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) next() string {
	if p.eof() {
		return ""
	}
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *parser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos]
}

// skipStatement advances past the next ";" terminator.
func (p *parser) skipStatement() {
	for !p.eof() {
		if p.next() == ";" {
			return
		}
	}
}

// expect consumes the next token and errors when it differs.
func (p *parser) expect(want string) error {
	if got := p.next(); got != want {
		return fmt.Errorf("lef: expected %q, got %q (token %d)", want, got, p.pos)
	}
	return nil
}

func (p *parser) number() (float64, error) {
	t := p.next()
	f, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("lef: bad number %q (token %d)", t, p.pos)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("lef: non-finite number %q (token %d)", t, p.pos)
	}
	if math.Abs(f) > maxCoordMicrons {
		return 0, fmt.Errorf("lef: number %q exceeds %g microns (token %d)", t, maxCoordMicrons, p.pos)
	}
	return f, nil
}

// micronsToDBU converts a micron value to DBU with round-half-away rounding.
func micronsToDBU(f float64, dbu int64) int64 {
	return int64(math.Round(f * float64(dbu)))
}

func (p *parser) dbu(scale int64) (int64, error) {
	f, err := p.number()
	if err != nil {
		return 0, err
	}
	return micronsToDBU(f, scale), nil
}

// Parse reads a LEF library.
func Parse(r io.Reader) (*Library, error) {
	p, err := newParser(r)
	if err != nil {
		return nil, err
	}
	lib := &Library{Tech: &tech.Technology{Name: "lef", DBUPerMicron: 1000}}
	t := lib.Tech
	for !p.eof() {
		switch tok := p.next(); tok {
		case "VERSION", "BUSBITCHARS", "DIVIDERCHAR":
			p.skipStatement()
		case "UNITS":
			for !p.eof() {
				u := p.next()
				if u == "END" {
					p.next() // UNITS
					break
				}
				if u == "DATABASE" {
					p.next() // MICRONS
					f, err := p.number()
					if err != nil {
						return nil, err
					}
					if f < 1 || f > maxDBUPerMicron || f != math.Trunc(f) {
						return nil, fmt.Errorf("lef: DATABASE MICRONS %v outside [1, %g] or not an integer", f, float64(maxDBUPerMicron))
					}
					t.DBUPerMicron = int64(f)
					p.skipStatement()
				}
			}
		case "SITE":
			name := p.next()
			for !p.eof() {
				s := p.next()
				if s == "END" {
					p.next()
					break
				}
				if s == "SIZE" {
					w, err := p.dbu(t.DBUPerMicron)
					if err != nil {
						return nil, err
					}
					if err := p.expect("BY"); err != nil {
						return nil, err
					}
					h, err := p.dbu(t.DBUPerMicron)
					if err != nil {
						return nil, err
					}
					t.SiteWidth, t.SiteHeight = w, h
					p.skipStatement()
				} else if s != ";" && s != "CLASS" && s != "CORE" {
					// ignore
					_ = name
				}
			}
		case "LAYER":
			if err := parseLayer(p, t); err != nil {
				return nil, err
			}
		case "VIA":
			if err := parseVia(p, t); err != nil {
				return nil, err
			}
		case "MACRO":
			m, err := parseMacro(p, t)
			if err != nil {
				return nil, err
			}
			lib.Masters = append(lib.Masters, m)
		case "END":
			if p.peek() == "LIBRARY" {
				p.next()
				return lib, nil
			}
		default:
			return nil, fmt.Errorf("lef: unexpected token %q (token %d)", tok, p.pos)
		}
	}
	return lib, nil
}

func parseLayer(p *parser, t *tech.Technology) error {
	name := p.next()
	var isCut bool
	l := &tech.RoutingLayer{Name: name}
	c := &tech.CutLayer{Name: name}
	for !p.eof() {
		switch tok := p.next(); tok {
		case "END":
			p.next() // layer name
			if isCut {
				c.BelowNum = len(t.Metals)
				t.Cuts = append(t.Cuts, c)
			} else {
				l.Num = len(t.Metals) + 1
				t.Metals = append(t.Metals, l)
			}
			return nil
		case "TYPE":
			isCut = p.next() == "CUT"
			p.skipStatement()
		case "DIRECTION":
			if p.next() == "VERTICAL" {
				l.Dir = tech.Vertical
			} else {
				l.Dir = tech.Horizontal
			}
			p.skipStatement()
		case "PITCH":
			v, err := p.dbu(t.DBUPerMicron)
			if err != nil {
				return err
			}
			l.Pitch = v
			p.skipStatement()
		case "WIDTH":
			v, err := p.dbu(t.DBUPerMicron)
			if err != nil {
				return err
			}
			if isCut {
				c.Width = v
			} else {
				l.Width = v
			}
			p.skipStatement()
		case "MINWIDTH":
			v, err := p.dbu(t.DBUPerMicron)
			if err != nil {
				return err
			}
			l.MinWid = v
			p.skipStatement()
		case "AREA":
			f, err := p.number()
			if err != nil {
				return err
			}
			l.Area = int64(math.Round(f * float64(t.DBUPerMicron) * float64(t.DBUPerMicron)))
			p.skipStatement()
		case "MINENCLOSEDAREA":
			f, err := p.number()
			if err != nil {
				return err
			}
			l.EncArea = int64(math.Round(f * float64(t.DBUPerMicron) * float64(t.DBUPerMicron)))
			p.skipStatement()
		case "CORNERSPACING":
			v, err := p.dbu(t.DBUPerMicron)
			if err != nil {
				return err
			}
			l.Corner.Spacing = v
			if p.peek() == "WIDTH" {
				p.next()
				w, err := p.dbu(t.DBUPerMicron)
				if err != nil {
					return err
				}
				l.Corner.EligibleWidth = w
			}
			p.skipStatement()
		case "MINSTEP":
			v, err := p.dbu(t.DBUPerMicron)
			if err != nil {
				return err
			}
			l.Step.MinStepLength = v
			if p.peek() == "MAXEDGES" {
				p.next()
				f, err := p.number()
				if err != nil {
					return err
				}
				l.Step.MaxEdges = int(f)
			}
			p.skipStatement()
		case "SPACING":
			v, err := p.dbu(t.DBUPerMicron)
			if err != nil {
				return err
			}
			if isCut {
				c.Spacing = v
				p.skipStatement()
				continue
			}
			if p.peek() == "ENDOFLINE" {
				p.next()
				w, err := p.dbu(t.DBUPerMicron)
				if err != nil {
					return err
				}
				if err := p.expect("WITHIN"); err != nil {
					return err
				}
				within, err := p.dbu(t.DBUPerMicron)
				if err != nil {
					return err
				}
				l.EOL = tech.EOLRule{EOLSpace: v, EOLWidth: w, EOLWithin: within}
			}
			p.skipStatement()
		case "SPACINGTABLE":
			if err := parseSpacingTable(p, t, l); err != nil {
				return err
			}
		default:
			p.skipStatement()
		}
	}
	return fmt.Errorf("lef: unterminated LAYER %s", name)
}

func parseSpacingTable(p *parser, t *tech.Technology, l *tech.RoutingLayer) error {
	if err := p.expect("PARALLELRUNLENGTH"); err != nil {
		return err
	}
	tbl := tech.SpacingTable{}
	for p.peek() != "WIDTH" && p.peek() != ";" && !p.eof() {
		v, err := p.dbu(t.DBUPerMicron)
		if err != nil {
			return err
		}
		tbl.PRLs = append(tbl.PRLs, v)
	}
	for p.peek() == "WIDTH" {
		p.next()
		w, err := p.dbu(t.DBUPerMicron)
		if err != nil {
			return err
		}
		tbl.Widths = append(tbl.Widths, w)
		row := make([]int64, 0, len(tbl.PRLs))
		for range tbl.PRLs {
			v, err := p.dbu(t.DBUPerMicron)
			if err != nil {
				return err
			}
			row = append(row, v)
		}
		tbl.Spacing = append(tbl.Spacing, row)
	}
	p.skipStatement()
	l.Spacing = tbl
	return nil
}

func parseVia(p *parser, t *tech.Technology) error {
	name := p.next()
	if p.peek() == "DEFAULT" {
		p.next()
	}
	v := &tech.ViaDef{Name: name}
	var cur string
	for !p.eof() {
		switch tok := p.next(); tok {
		case "END":
			p.next() // via name
			if v.CutBelow < 1 || v.CutBelow > len(t.Cuts) {
				return fmt.Errorf("lef: via %q lacks resolvable layers", v.Name)
			}
			t.Vias = append(t.Vias, v)
			return nil
		case "LAYER":
			cur = p.next()
			p.skipStatement()
		case "RECT":
			var vals [4]int64
			for i := range vals {
				x, err := p.dbu(t.DBUPerMicron)
				if err != nil {
					return err
				}
				vals[i] = x
			}
			p.skipStatement()
			r := geom.R(vals[0], vals[1], vals[2], vals[3])
			switch {
			case t.MetalByName(cur) != nil:
				m := t.MetalByName(cur)
				if v.CutBelow == 0 || m.Num == v.CutBelow {
					v.BotEnc = r
					if v.CutBelow == 0 {
						v.CutBelow = m.Num
					}
				} else {
					v.TopEnc = r
				}
			default: // cut layer
				v.Cuts = append(v.Cuts, r)
				for _, c := range t.Cuts {
					if c.Name == cur {
						v.CutBelow = c.BelowNum
					}
				}
			}
		default:
			p.skipStatement()
		}
	}
	return fmt.Errorf("lef: unterminated VIA %s", name)
}

func parseMacro(p *parser, t *tech.Technology) (*db.Master, error) {
	m := &db.Master{Name: p.next()}
	for !p.eof() {
		switch tok := p.next(); tok {
		case "END":
			p.next() // macro name
			return m, nil
		case "CLASS":
			if p.next() == "BLOCK" {
				m.Class = db.ClassBlock
			}
			p.skipStatement()
		case "SIZE":
			w, err := p.dbu(t.DBUPerMicron)
			if err != nil {
				return nil, err
			}
			if err := p.expect("BY"); err != nil {
				return nil, err
			}
			h, err := p.dbu(t.DBUPerMicron)
			if err != nil {
				return nil, err
			}
			m.Size = geom.Pt(w, h)
			p.skipStatement()
		case "PIN":
			pin, err := parsePin(p, t)
			if err != nil {
				return nil, err
			}
			m.Pins = append(m.Pins, pin)
		case "OBS":
			shapes, err := parseShapes(p, t, "END")
			if err != nil {
				return nil, err
			}
			m.Obs = shapes
		case "ORIGIN", "SYMMETRY", "SITE", "FOREIGN":
			p.skipStatement()
		default:
			p.skipStatement()
		}
	}
	return nil, fmt.Errorf("lef: unterminated MACRO %s", m.Name)
}

func parsePin(p *parser, t *tech.Technology) (*db.MPin, error) {
	pin := &db.MPin{Name: p.next()}
	for !p.eof() {
		switch tok := p.next(); tok {
		case "END":
			p.next() // pin name
			return pin, nil
		case "DIRECTION":
			switch p.next() {
			case "OUTPUT":
				pin.Dir = db.DirOutput
			case "INOUT":
				pin.Dir = db.DirInout
			}
			p.skipStatement()
		case "USE":
			switch p.next() {
			case "POWER":
				pin.Use = db.UsePower
			case "GROUND":
				pin.Use = db.UseGround
			case "CLOCK":
				pin.Use = db.UseClock
			}
			p.skipStatement()
		case "PORT":
			shapes, err := parseShapes(p, t, "END")
			if err != nil {
				return nil, err
			}
			pin.Shapes = append(pin.Shapes, shapes...)
		default:
			p.skipStatement()
		}
	}
	return nil, fmt.Errorf("lef: unterminated PIN %s", pin.Name)
}

// parseShapes reads LAYER/RECT statements until the terminator token.
func parseShapes(p *parser, t *tech.Technology, term string) ([]db.Shape, error) {
	var out []db.Shape
	layer := 0
	for !p.eof() {
		switch tok := p.next(); tok {
		case term:
			return out, nil
		case "LAYER":
			name := p.next()
			l := t.MetalByName(name)
			if l == nil {
				return nil, fmt.Errorf("lef: unknown layer %q in shapes", name)
			}
			layer = l.Num
			p.skipStatement()
		case "RECT":
			var vals [4]int64
			for i := range vals {
				v, err := p.dbu(t.DBUPerMicron)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			p.skipStatement()
			out = append(out, db.Shape{Layer: layer, Rect: geom.R(vals[0], vals[1], vals[2], vals[3])})
		case "POLYGON":
			// A rectilinear polygon given as x y pairs; decomposed into its
			// maximal rectangles (the representation the access point
			// generator consumes anyway — Section II-C's "maximum rectangles
			// of the polygon(s)").
			var pts []geom.Point
			for p.peek() != ";" && !p.eof() {
				x, err := p.dbu(t.DBUPerMicron)
				if err != nil {
					return nil, err
				}
				y, err := p.dbu(t.DBUPerMicron)
				if err != nil {
					return nil, err
				}
				pts = append(pts, geom.Pt(x, y))
			}
			p.skipStatement()
			rects, err := polygonRects(pts)
			if err != nil {
				return nil, err
			}
			for _, r := range rects {
				out = append(out, db.Shape{Layer: layer, Rect: r})
			}
		default:
			p.skipStatement()
		}
	}
	return nil, fmt.Errorf("lef: unterminated shape list")
}

// polygonRects converts a rectilinear polygon's vertex list into maximal
// rectangles by slicing the ring into horizontal trapezoids (all rectangles
// for a rectilinear ring) and re-merging.
func polygonRects(pts []geom.Point) ([]geom.Rect, error) {
	if len(pts) < 4 {
		return nil, fmt.Errorf("lef: POLYGON needs at least 4 vertices, got %d", len(pts))
	}
	ring := geom.Ring(pts)
	if ring.SignedArea2() == 0 {
		return nil, fmt.Errorf("lef: degenerate POLYGON")
	}
	slices, err := geom.RingSlices(ring)
	if err != nil {
		return nil, err
	}
	return geom.MaxRects(slices), nil
}
