package lef

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/tech"
)

func testMasters() []*db.Master {
	return []*db.Master{
		{
			Name: "NAND2X1", Class: db.ClassCore, Size: geom.Pt(570, 1400),
			Pins: []*db.MPin{
				{Name: "A", Dir: db.DirInput, Use: db.UseSignal,
					Shapes: []db.Shape{{Layer: 1, Rect: geom.R(70, 455, 210, 525)}}},
				{Name: "Y", Dir: db.DirOutput, Use: db.UseSignal,
					Shapes: []db.Shape{
						{Layer: 1, Rect: geom.R(350, 455, 490, 525)},
						{Layer: 1, Rect: geom.R(350, 525, 420, 805)},
					}},
				{Name: "VDD", Dir: db.DirInout, Use: db.UsePower,
					Shapes: []db.Shape{{Layer: 1, Rect: geom.R(0, 1330, 570, 1400)}}},
			},
			Obs: []db.Shape{{Layer: 1, Rect: geom.R(250, 200, 320, 400)}},
		},
		{
			Name: "RAM16", Class: db.ClassBlock, Size: geom.Pt(20000, 20000),
			Pins: []*db.MPin{
				{Name: "D0", Dir: db.DirInput, Use: db.UseSignal,
					Shapes: []db.Shape{{Layer: 3, Rect: geom.R(0, 100, 300, 240)}}},
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	orig := tech.N45()
	masters := testMasters()
	var buf bytes.Buffer
	if err := Write(&buf, orig, masters); err != nil {
		t.Fatal(err)
	}
	lib, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Parse: %v\nLEF:\n%s", err, buf.String())
	}
	tt := lib.Tech
	if tt.DBUPerMicron != orig.DBUPerMicron {
		t.Errorf("DBUPerMicron %d != %d", tt.DBUPerMicron, orig.DBUPerMicron)
	}
	if tt.SiteWidth != orig.SiteWidth || tt.SiteHeight != orig.SiteHeight {
		t.Errorf("site %dx%d != %dx%d", tt.SiteWidth, tt.SiteHeight, orig.SiteWidth, orig.SiteHeight)
	}
	if len(tt.Metals) != len(orig.Metals) {
		t.Fatalf("metals %d != %d", len(tt.Metals), len(orig.Metals))
	}
	for i, l := range tt.Metals {
		o := orig.Metals[i]
		if l.Name != o.Name || l.Dir != o.Dir || l.Pitch != o.Pitch || l.Width != o.Width ||
			l.MinWid != o.MinWid || l.Area != o.Area || l.Step != o.Step || l.EOL != o.EOL ||
			l.Corner != o.Corner || l.EncArea != o.EncArea {
			t.Errorf("layer %s mismatch:\n got %+v\nwant %+v", l.Name, l, o)
		}
		if len(l.Spacing.Widths) != len(o.Spacing.Widths) || len(l.Spacing.PRLs) != len(o.Spacing.PRLs) {
			t.Fatalf("layer %s spacing table shape mismatch", l.Name)
		}
		for r := range o.Spacing.Spacing {
			for c := range o.Spacing.Spacing[r] {
				if l.Spacing.Spacing[r][c] != o.Spacing.Spacing[r][c] {
					t.Errorf("layer %s spacing[%d][%d] = %d, want %d", l.Name, r, c,
						l.Spacing.Spacing[r][c], o.Spacing.Spacing[r][c])
				}
			}
		}
	}
	if len(tt.Cuts) != len(orig.Cuts) {
		t.Fatalf("cuts %d != %d", len(tt.Cuts), len(orig.Cuts))
	}
	for i, c := range tt.Cuts {
		o := orig.Cuts[i]
		if c.Name != o.Name || c.BelowNum != o.BelowNum || c.Width != o.Width || c.Spacing != o.Spacing {
			t.Errorf("cut %s mismatch: got %+v want %+v", c.Name, c, o)
		}
	}
	if len(tt.Vias) != len(orig.Vias) {
		t.Fatalf("vias %d != %d", len(tt.Vias), len(orig.Vias))
	}
	for i, v := range tt.Vias {
		o := orig.Vias[i]
		if v.Name != o.Name || v.CutBelow != o.CutBelow || v.BotEnc != o.BotEnc || v.TopEnc != o.TopEnc ||
			len(v.Cuts) != len(o.Cuts) {
			t.Errorf("via %s mismatch:\n got %+v\nwant %+v", v.Name, v, o)
			continue
		}
		for ci := range o.Cuts {
			if v.Cuts[ci] != o.Cuts[ci] {
				t.Errorf("via %s cut %d: %v != %v", v.Name, ci, v.Cuts[ci], o.Cuts[ci])
			}
		}
	}
	if err := tt.Validate(); err != nil {
		t.Errorf("round-tripped tech invalid: %v", err)
	}

	if len(lib.Masters) != len(masters) {
		t.Fatalf("masters %d != %d", len(lib.Masters), len(masters))
	}
	for i, m := range lib.Masters {
		o := masters[i]
		if m.Name != o.Name || m.Class != o.Class || m.Size != o.Size {
			t.Errorf("master %s header mismatch", o.Name)
		}
		if len(m.Pins) != len(o.Pins) {
			t.Fatalf("master %s pins %d != %d", o.Name, len(m.Pins), len(o.Pins))
		}
		for j, p := range m.Pins {
			op := o.Pins[j]
			if p.Name != op.Name || p.Dir != op.Dir || p.Use != op.Use || len(p.Shapes) != len(op.Shapes) {
				t.Errorf("pin %s/%s mismatch: %+v vs %+v", o.Name, op.Name, p, op)
				continue
			}
			for k, s := range p.Shapes {
				if s != op.Shapes[k] {
					t.Errorf("pin %s/%s shape %d: %v != %v", o.Name, op.Name, k, s, op.Shapes[k])
				}
			}
		}
		if len(m.Obs) != len(o.Obs) {
			t.Errorf("master %s obs %d != %d", o.Name, len(m.Obs), len(o.Obs))
		}
	}
}

func TestRoundTripAllNodes(t *testing.T) {
	for _, nm := range []int{45, 32, 14} {
		orig, _ := tech.ByNode(nm)
		var buf bytes.Buffer
		if err := Write(&buf, orig, nil); err != nil {
			t.Fatal(err)
		}
		lib, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("node %d: %v", nm, err)
		}
		if err := lib.Tech.Validate(); err != nil {
			t.Errorf("node %d round-trip invalid: %v", nm, err)
		}
		if len(lib.Tech.Vias) != len(orig.Vias) {
			t.Errorf("node %d vias %d != %d", nm, len(lib.Tech.Vias), len(orig.Vias))
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"MACRO X\n  PIN A\n    PORT\n      LAYER NOPE ;\n      RECT 0 0 1 1 ;\n    END\n  END A\nEND X\nEND LIBRARY\n",
		"LAYER M1\n  TYPE ROUTING ;\n", // unterminated
	}
	for i, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestFormatMicrons(t *testing.T) {
	cases := []struct {
		v    int64
		want string
	}{
		{70, "0.07"}, {1400, "1.4"}, {0, "0"}, {-35, "-0.035"}, {1000, "1"},
	}
	for _, c := range cases {
		if got := formatMicrons(c.v, 1000); got != c.want {
			t.Errorf("formatMicrons(%d) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestComments(t *testing.T) {
	src := "# a comment line\nVERSION 5.8 ; # trailing comment\nEND LIBRARY\n"
	if _, err := Parse(strings.NewReader(src)); err != nil {
		t.Fatalf("comments must be ignored: %v", err)
	}
}

func TestParsePolygonPort(t *testing.T) {
	src := `VERSION 5.8 ;
UNITS
  DATABASE MICRONS 1000 ;
END UNITS
LAYER M1
  TYPE ROUTING ;
  DIRECTION HORIZONTAL ;
  PITCH 0.14 ;
  WIDTH 0.07 ;
END M1
MACRO LPIN
  CLASS CORE ;
  SIZE 0.56 BY 1.4 ;
  PIN A
    DIRECTION INPUT ;
    USE SIGNAL ;
    PORT
      LAYER M1 ;
        POLYGON 0 0 0.01 0 0.01 0.004 0.004 0.004 0.004 0.01 0 0.01 ;
    END
  END A
END LPIN
END LIBRARY
`
	lib, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Masters) != 1 {
		t.Fatalf("masters = %d", len(lib.Masters))
	}
	pin := lib.Masters[0].PinByName("A")
	if pin == nil {
		t.Fatal("pin A missing")
	}
	// The L decomposes into its two maximal rectangles.
	if len(pin.Shapes) != 2 {
		t.Fatalf("polygon decomposed into %d rects, want 2: %+v", len(pin.Shapes), pin.Shapes)
	}
	var rects []geom.Rect
	for _, s := range pin.Shapes {
		rects = append(rects, s.Rect)
	}
	if got := geom.UnionArea(rects); got != 10*4+4*6 {
		t.Fatalf("polygon area = %d, want 64", got)
	}
}

func TestParsePolygonErrors(t *testing.T) {
	base := `VERSION 5.8 ;
LAYER M1
  TYPE ROUTING ;
END M1
MACRO X
  PIN A
    PORT
      LAYER M1 ;
        POLYGON %s ;
    END
  END A
END X
END LIBRARY
`
	for i, body := range []string{"0 0 0.001 0.001", "0 0 0.01 0.01 0 0.02"} {
		src := strings.Replace(base, "%s", body, 1)
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected polygon error", i)
		}
	}
}
