// Package suite generates the synthetic benchmark testcases that stand in
// for the official ISPD-2018 initial detailed routing contest suite. Each
// testcase mirrors the corresponding Table I row: standard cell count, macro
// count, net count, IO pin count, layer count, die size and technology node.
//
// Unique-instance diversity (the quantity Experiment 1 sweeps) is controlled
// per testcase by two knobs:
//
//   - RowJitters: per-row x offsets of the placement rows relative to the
//     vertical routing tracks. A row placed off the track grid gives every
//     cell in it a different track-offset signature — exactly the Fig. 1
//     situation. One jitter (test1-3, test7-10) keeps the class count near
//     #masters x #orientations; many jitters (test4-6) multiply it into the
//     thousands, as in the paper.
//   - Variants: the stdcell library's geometric variant count, standing in
//     for library richness.
package suite

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/stdcell"
	"repro/internal/tech"
)

// Spec describes one testcase.
type Spec struct {
	Name     string
	Node     int // nm
	StdCells int
	Macros   int
	Nets     int
	IOPins   int
	DieW     int64 // DBU
	DieH     int64
	// Variants is the stdcell library variant count.
	Variants int
	// RowJitters are the x offsets cycled across placement rows.
	RowJitters []int64
	// MisalignY builds the library with off-track pins (14 nm study).
	MisalignY bool
	// MultiHeightEvery mixes one double-height cell into the placement every
	// N standard cells (0 disables) — the paper's future-work item (i)
	// exercised at design scale.
	MultiHeightEvery int
	Seed             int64
}

// Testcases mirrors Table I of the paper (die sizes in mm^2 converted to DBU;
// 1 DBU = 1 nm). Net counts track the paper; the netlist generator connects
// approximately two instance pins per cell to match Table III's pin totals.
var Testcases = []Spec{
	{Name: "pao_test1", Node: 45, StdCells: 8879, Macros: 0, Nets: 3153, IOPins: 0, DieW: 200000, DieH: 190000, Variants: 7, RowJitters: []int64{0}, Seed: 1},
	{Name: "pao_test2", Node: 45, StdCells: 35913, Macros: 0, Nets: 36834, IOPins: 1211, DieW: 650000, DieH: 570000, Variants: 8, RowJitters: []int64{0}, Seed: 2},
	{Name: "pao_test3", Node: 45, StdCells: 35973, Macros: 4, Nets: 36700, IOPins: 1211, DieW: 990000, DieH: 700000, Variants: 8, RowJitters: []int64{0}, Seed: 3},
	{Name: "pao_test4", Node: 32, StdCells: 72094, Macros: 0, Nets: 72401, IOPins: 1211, DieW: 890000, DieH: 610000, Variants: 8, RowJitters: []int64{0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 65, 70, 75, 80, 85, 90}, Seed: 4},
	{Name: "pao_test5", Node: 32, StdCells: 71954, Macros: 0, Nets: 72394, IOPins: 1211, DieW: 930000, DieH: 920000, Variants: 8, RowJitters: []int64{0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 65, 70, 75, 80, 85, 90}, Seed: 5},
	{Name: "pao_test6", Node: 32, StdCells: 107919, Macros: 0, Nets: 107701, IOPins: 1211, DieW: 860000, DieH: 530000, Variants: 8, RowJitters: []int64{0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 65, 70, 75, 80, 85, 90}, Seed: 6},
	{Name: "pao_test7", Node: 32, StdCells: 179865, Macros: 16, Nets: 179863, IOPins: 1211, DieW: 1360000, DieH: 1330000, Variants: 2, RowJitters: []int64{0}, Seed: 7},
	{Name: "pao_test8", Node: 32, StdCells: 191987, Macros: 16, Nets: 179863, IOPins: 1211, DieW: 1360000, DieH: 1330000, Variants: 8, RowJitters: []int64{0}, Seed: 8},
	{Name: "pao_test9", Node: 32, StdCells: 192911, Macros: 0, Nets: 178857, IOPins: 1211, DieW: 910000, DieH: 780000, Variants: 8, RowJitters: []int64{0}, Seed: 9},
	{Name: "pao_test10", Node: 32, StdCells: 290386, Macros: 0, Nets: 182000, IOPins: 1211, DieW: 910000, DieH: 870000, Variants: 8, RowJitters: []int64{0}, Seed: 10},
}

// MultiHeight is a dedicated testcase mixing double-height cells into a
// pao_test1-class design (not part of the Table I mirror; the paper lists
// multi-height support as future work).
var MultiHeight = Spec{
	Name: "pao_mh", Node: 45, StdCells: 8000, Macros: 0, Nets: 7000, IOPins: 0,
	DieW: 200000, DieH: 190000, Variants: 5, RowJitters: []int64{0},
	MultiHeightEvery: 9, Seed: 21,
}

// AES14 is the Fig. 9 study: a 14 nm AES-like design (the paper reports 20K
// instances, 779 unique instances and 57K instance pins, all cleanly
// accessed in 9 seconds).
var AES14 = Spec{
	Name: "aes_14nm", Node: 14, StdCells: 20000, Macros: 0, Nets: 28500, IOPins: 390,
	DieW: 260000, DieH: 250000, Variants: 8,
	RowJitters: []int64{0, 8, 16, 24, 32, 40, 48, 56}, MisalignY: true, Seed: 14,
}

// ByName returns the named testcase spec.
func ByName(name string) (Spec, error) {
	if name == AES14.Name {
		return AES14, nil
	}
	if name == MultiHeight.Name {
		return MultiHeight, nil
	}
	for _, s := range Testcases {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("suite: unknown testcase %q", name)
}

// Scale returns a proportionally shrunken copy of the spec (cells, nets, IO
// and die area all scaled), for unit tests and laptop-scale routing runs.
func (s Spec) Scale(f float64) Spec {
	if f >= 1 {
		return s
	}
	out := s
	out.Name = fmt.Sprintf("%s_s%04d", s.Name, int(f*10000))
	out.StdCells = maxInt(20, int(float64(s.StdCells)*f))
	out.Nets = maxInt(10, int(float64(s.Nets)*f))
	out.IOPins = int(float64(s.IOPins) * f)
	out.Macros = 0
	side := math.Sqrt(f)
	out.DieW = maxI64(20000, int64(float64(s.DieW)*side))
	out.DieH = maxI64(20000, int64(float64(s.DieH)*side))
	return out
}

// WithSeed returns a copy of the spec with the RNG seed replaced. Tests that
// need byte-for-byte reproducible designs (the difftest harness in
// particular) plumb their own seed through this, so a failure report's
// (testcase, seed) pair regenerates the exact design.
func (s Spec) WithSeed(seed int64) Spec {
	s.Seed = seed
	return s
}

// Generate builds the placed design for a spec. Generation is fully
// deterministic in the spec's seed.
func Generate(spec Spec) (*db.Design, error) {
	t, err := tech.ByNode(spec.Node)
	if err != nil {
		return nil, err
	}
	lib, err := stdcell.Generate(t, stdcell.Options{Variants: spec.Variants, MisalignY: spec.MisalignY})
	if err != nil {
		return nil, err
	}
	if len(lib.Core) == 0 {
		return nil, fmt.Errorf("suite: empty library for node %d", spec.Node)
	}
	var mh *db.Master
	if spec.MultiHeightEvery > 0 {
		mh, err = stdcell.MultiHeight(t, "DFF2HX1", 8)
		if err != nil {
			return nil, err
		}
		lib.Masters = append(lib.Masters, mh)
	}
	d := db.NewDesign(spec.Name, t)
	d.Die = geom.R(0, 0, spec.DieW, spec.DieH)
	d.SigMaxLayer = 4 // pins live on M1..M3; phases above M4 can't matter
	for _, m := range lib.Masters {
		if err := d.AddMaster(m); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	addTracks(d, t)
	blocked, err := placeMacros(d, t, spec, rng)
	if err != nil {
		return nil, err
	}
	if err := placeStdCells(d, t, lib, spec, rng, blocked); err != nil {
		return nil, err
	}
	placeIOPins(d, t, spec)
	buildNets(d, spec, rng)
	return d, nil
}

// addTracks emits one preferred-direction track pattern per routing layer,
// phase-aligned with the in-cell track grid (rows sit at multiples of the
// cell height, which is ten M1 pitches).
func addTracks(d *db.Design, t *tech.Technology) {
	for _, l := range t.Metals {
		var start, extent int64
		if l.Dir == tech.Horizontal {
			start, extent = l.Pitch/2, d.Die.YH
		} else {
			start, extent = l.Pitch/2, d.Die.XH
		}
		num := int((extent - start) / l.Pitch)
		d.Tracks = append(d.Tracks, db.TrackPattern{
			Layer: l.Num, WireDir: l.Dir, Start: start, Num: num, Step: l.Pitch,
		})
	}
}

// placeMacros drops the spec's macros in the top-right region and returns
// their haloed bounding boxes.
func placeMacros(d *db.Design, t *tech.Technology, spec Spec, rng *rand.Rand) ([]geom.Rect, error) {
	if spec.Macros == 0 {
		return nil, nil
	}
	macro := stdcell.Macro(t, "RAMB1", 120, 8, 24)
	if err := d.AddMaster(macro); err != nil {
		return nil, err
	}
	var blocked []geom.Rect
	w, h := macro.Size.X, macro.Size.Y
	halo := 2 * t.Metal(1).Pitch
	perRow := maxInt(1, int((spec.DieW/(w+4*halo))/2))
	for i := 0; i < spec.Macros; i++ {
		col, row := i%perRow, i/perRow
		x := spec.DieW - int64(col+1)*(w+4*halo)
		y := spec.DieH - int64(row+1)*(h+4*halo)
		y -= y % t.SiteHeight // keep macros row-aligned
		if x < 0 || y < 0 {
			break
		}
		inst := &db.Instance{Name: fmt.Sprintf("m%d", i), Master: macro, Pos: geom.Pt(x, y), Orient: geom.OrientN}
		if err := d.AddInstance(inst); err != nil {
			return nil, err
		}
		blocked = append(blocked, inst.BBox().Bloat(halo))
	}
	_ = rng
	return blocked, nil
}

// placeStdCells fills rows with library cells until the target count.
func placeStdCells(d *db.Design, t *tech.Technology, lib *stdcell.Library, spec Spec, rng *rand.Rand, blocked []geom.Rect) error {
	mh := d.MasterByName("DFF2HX1")
	numRows := int(spec.DieH / t.SiteHeight)
	// Keep a one-row core margin at the bottom and top of the die: the IO
	// pads live in those bands and must not interact with cell pin access.
	rowLo, rowHi := 1, numRows-1
	if rowHi <= rowLo {
		return fmt.Errorf("suite: die too short for core rows")
	}
	placed := 0
	// Target an even distribution with random gaps; loop rows until done.
	for pass := 0; placed < spec.StdCells; pass++ {
		anyRoom := false
		for r := rowLo; r < rowHi && placed < spec.StdCells; r++ {
			jitter := spec.RowJitters[r%len(spec.RowJitters)]
			y := int64(r) * t.SiteHeight
			orient := geom.OrientN
			if r%2 == 1 {
				orient = geom.OrientFS
			}
			if pass == 0 {
				d.Rows = append(d.Rows, &db.Row{
					Name:     fmt.Sprintf("ROW_%d", r),
					Origin:   geom.Pt(jitter, y),
					NumSites: int((spec.DieW - jitter) / t.SiteWidth),
					SiteW:    t.SiteWidth, SiteH: t.SiteHeight, Orient: orient,
				})
			}
			// Each pass fills a horizontal band of the row, so repeated
			// passes interleave deterministically.
			x := jitter + int64(pass)*7*t.SiteWidth
			rowEnd := spec.DieW - 2*t.SiteWidth
			for x < rowEnd && placed < spec.StdCells {
				m := lib.Core[rng.Intn(len(lib.Core))]
				// Double-height cells drop in on even rows (never the last)
				// and reserve the row above via the blocked list.
				if mh != nil && spec.MultiHeightEvery > 0 && placed%spec.MultiHeightEvery == spec.MultiHeightEvery-1 &&
					r%2 == 0 && r+1 < rowHi {
					m = mh
				}
				bbox := geom.R(x, y, x+m.Size.X, y+m.Size.Y)
				if bbox.XH > rowEnd {
					break
				}
				if hit := overlapsAny(bbox, blocked); hit {
					x += t.SiteWidth * 8
					continue
				}
				if m.Size.Y > t.SiteHeight {
					blocked = append(blocked, bbox)
				}
				inst := &db.Instance{
					Name: fmt.Sprintf("u%d", placed), Master: m,
					Pos: geom.Pt(x, y), Orient: orient,
				}
				if err := d.AddInstance(inst); err != nil {
					return err
				}
				placed++
				anyRoom = true
				// Advance past the cell. Most neighbors abut (gap 0) so
				// Step-3 clusters form; occasional gaps break clusters and
				// leave whitespace for later passes.
				var gap int64
				switch roll := rng.Intn(20); {
				case roll < 11: // abut
				case roll < 16:
					gap = int64(rng.Intn(2)+1) * t.SiteWidth
				case roll < 19:
					gap = int64(rng.Intn(6)+3) * t.SiteWidth
				default:
					gap = 25 * t.SiteWidth
				}
				x += m.Size.X + gap
			}
		}
		if !anyRoom {
			return fmt.Errorf("suite: %s: placed only %d of %d cells (die too small)", spec.Name, placed, spec.StdCells)
		}
	}
	return nil
}

func overlapsAny(r geom.Rect, set []geom.Rect) bool {
	for _, b := range set {
		if r.Overlaps(b) {
			return true
		}
	}
	return false
}

// placeIOPins spreads the IO pins along the bottom and top die edges on M2.
func placeIOPins(d *db.Design, t *tech.Technology, spec Spec) {
	if spec.IOPins == 0 {
		return
	}
	m2 := t.Metal(2)
	w := m2.Width
	h := 4 * m2.Pitch
	for i := 0; i < spec.IOPins; i++ {
		frac := float64(i) / float64(spec.IOPins)
		x := int64(frac*float64(spec.DieW-8*m2.Pitch)) + 4*m2.Pitch
		x -= x % m2.Pitch
		x += m2.Pitch / 2 // on-track
		var r geom.Rect
		if i%2 == 0 {
			r = geom.R(x-w/2, 0, x+w/2, h)
		} else {
			r = geom.R(x-w/2, spec.DieH-h, x+w/2, spec.DieH)
		}
		dir := db.DirInput
		if i%3 == 0 {
			dir = db.DirOutput
		}
		d.IOPins = append(d.IOPins, &db.IOPin{
			Name: fmt.Sprintf("io%d", i), Dir: dir,
			Shape: db.Shape{Layer: 2, Rect: r},
		})
	}
}

// buildNets wires the design: each net has one driver (an output pin or an
// input IO pad) and one to four sinks picked from spatially nearby unused
// input pins, giving the local connectivity detailed routers expect.
func buildNets(d *db.Design, spec Spec, rng *rand.Rand) {
	type inputTerm struct {
		inst *db.Instance
		pin  *db.MPin
	}
	var drivers []db.Term
	var inputs []inputTerm
	for _, inst := range d.Instances {
		for _, p := range inst.Master.SignalPins() {
			if p.Dir == db.DirOutput {
				drivers = append(drivers, db.Term{Inst: inst, Pin: p})
			} else {
				inputs = append(inputs, inputTerm{inst, p})
			}
		}
	}
	// Bucket input pins by coarse grid cell for locality; the bucket scales
	// with the die so scaled-down testcases keep realistically local nets.
	bucket := spec.DieW / 15
	if bucket > 40000 {
		bucket = 40000 // 40 um
	}
	if bucket < 5000 {
		bucket = 5000
	}
	grid := make(map[[2]int64][]int)
	for i, in := range inputs {
		c := in.inst.BBox().Center()
		grid[[2]int64{c.X / bucket, c.Y / bucket}] = append(grid[[2]int64{c.X / bucket, c.Y / bucket}], i)
	}
	usedInput := make([]bool, len(inputs))
	takeNear := func(p geom.Point, n int) []inputTerm {
		var out []inputTerm
		cx, cy := p.X/bucket, p.Y/bucket
		for ring := int64(0); ring <= 2 && len(out) < n; ring++ {
			for dx := -ring; dx <= ring && len(out) < n; dx++ {
				for dy := -ring; dy <= ring && len(out) < n; dy++ {
					if maxI64(absI64(dx), absI64(dy)) != ring {
						continue
					}
					ids := grid[[2]int64{cx + dx, cy + dy}]
					for _, id := range ids {
						if usedInput[id] {
							continue
						}
						usedInput[id] = true
						out = append(out, inputs[id])
						if len(out) >= n {
							break
						}
					}
				}
			}
		}
		return out
	}

	// IO-driven nets first (input pads drive), then cell-output nets.
	netID := 0
	for _, io := range d.IOPins {
		if io.Dir != db.DirInput || len(d.Nets) >= spec.Nets {
			continue
		}
		sinks := takeNear(io.Shape.Rect.Center(), 1+rng.Intn(2))
		if len(sinks) == 0 {
			continue
		}
		n := &db.Net{Name: fmt.Sprintf("net%d", netID), IOPins: []*db.IOPin{io}}
		for _, s := range sinks {
			n.Terms = append(n.Terms, db.Term{Inst: s.inst, Pin: s.pin})
		}
		d.Nets = append(d.Nets, n)
		netID++
	}
	for _, drv := range drivers {
		if len(d.Nets) >= spec.Nets {
			break
		}
		sinks := takeNear(drv.Inst.BBox().Center(), 1+rng.Intn(3))
		if len(sinks) == 0 {
			continue
		}
		n := &db.Net{Name: fmt.Sprintf("net%d", netID), Terms: []db.Term{drv}}
		for _, s := range sinks {
			n.Terms = append(n.Terms, db.Term{Inst: s.inst, Pin: s.pin})
		}
		d.Nets = append(d.Nets, n)
		netID++
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
