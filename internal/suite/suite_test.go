package suite

import (
	"testing"

	"repro/internal/drc"
	"repro/internal/pao"
)

func TestSpecsMirrorTableI(t *testing.T) {
	if len(Testcases) != 10 {
		t.Fatalf("testcases = %d, want 10", len(Testcases))
	}
	// Spot-check the Table I mirror.
	if Testcases[0].StdCells != 8879 || Testcases[0].Node != 45 {
		t.Errorf("test1 spec wrong: %+v", Testcases[0])
	}
	if Testcases[9].StdCells != 290386 || Testcases[9].Node != 32 {
		t.Errorf("test10 spec wrong: %+v", Testcases[9])
	}
	if Testcases[6].Macros != 16 || Testcases[2].Macros != 4 {
		t.Error("macro counts wrong")
	}
	if _, err := ByName("pao_test5"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("aes_14nm"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) must fail")
	}
}

func TestGenerateSmall(t *testing.T) {
	spec := Testcases[0].Scale(0.02) // ~177 cells
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumStdCells() != spec.StdCells {
		t.Errorf("placed %d cells, want %d", d.NumStdCells(), spec.StdCells)
	}
	if len(d.Nets) == 0 || len(d.Nets) > spec.Nets {
		t.Errorf("nets = %d, want (0,%d]", len(d.Nets), spec.Nets)
	}
	if len(d.Rows) == 0 || len(d.Tracks) != 9 {
		t.Errorf("rows %d tracks %d", len(d.Rows), len(d.Tracks))
	}
	// Structural validation: no overlaps, everything on grid and in the die.
	if problems := d.Validate(5); len(problems) > 0 {
		t.Fatalf("generated design has structural problems: %v", problems)
	}
	// Clusters exist (cells abut).
	multi := 0
	for _, c := range d.Clusters() {
		if len(c.Insts) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-instance clusters; Step 3 would be vacuous")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Testcases[1].Scale(0.004)
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Instances) != len(b.Instances) || len(a.Nets) != len(b.Nets) {
		t.Fatal("nondeterministic generation")
	}
	for i := range a.Instances {
		ia, ib := a.Instances[i], b.Instances[i]
		if ia.Name != ib.Name || ia.Pos != ib.Pos || ia.Orient != ib.Orient || ia.Master.Name != ib.Master.Name {
			t.Fatalf("instance %d differs", i)
		}
	}
}

// TestWithSeed: the explicit seed fully controls generation — equal seeds
// reproduce the design byte-for-byte, different seeds diverge, and Scale
// preserves the seed so difftest failure reports replay exactly.
func TestWithSeed(t *testing.T) {
	base := Testcases[0].Scale(0.01)
	if got := base.Seed; got != Testcases[0].Seed {
		t.Fatalf("Scale changed the seed: %d", got)
	}
	s1 := base.WithSeed(99)
	if s1.Seed != 99 || base.Seed == 99 {
		t.Fatal("WithSeed must copy, not mutate")
	}
	a, err := Generate(s1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(base.WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Instances {
		ia, ib := a.Instances[i], b.Instances[i]
		if ia.Pos != ib.Pos || ia.Master.Name != ib.Master.Name {
			t.Fatalf("same seed, instance %d differs", i)
		}
	}
	c, err := Generate(base.WithSeed(100))
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Instances) == len(c.Instances)
	if same {
		for i := range a.Instances {
			if a.Instances[i].Master.Name != c.Instances[i].Master.Name {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical master sequences")
	}
}

// TestBaseDesignClean: the generated fixed geometry (pins, rails, obs) must
// be DRC-clean before any pin access work happens — otherwise failed-pin
// counts would blame the generator, not the access strategy.
func TestBaseDesignClean(t *testing.T) {
	spec := Testcases[0].Scale(0.01)
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	eng := a.GlobalEngine()
	vs := eng.CheckAll()
	for i, v := range vs {
		if i > 10 {
			break
		}
		t.Errorf("base violation: %s", v)
	}
	if len(vs) > 0 {
		t.Fatalf("%d base violations", len(vs))
	}
	_ = drc.NoNet
}

// TestPAAFCleanOnSuite is the headline integration test: PAAF achieves zero
// failed pins on a scaled testcase (the Table III "PAAF w/ BCA" column).
func TestPAAFCleanOnSuite(t *testing.T) {
	spec := Testcases[0].Scale(0.02)
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()
	if res.Stats.TotalPins == 0 {
		t.Fatal("no pins to access")
	}
	if res.Stats.FailedPins != 0 {
		t.Fatalf("FailedPins = %d of %d, want 0", res.Stats.FailedPins, res.Stats.TotalPins)
	}
	if res.Stats.NumUnique == 0 || res.Stats.TotalAPs == 0 {
		t.Fatalf("stats not populated: %+v", res.Stats)
	}
}

// TestJitterDrivesUniqueInstances: the row-jitter knob must multiply the
// unique-instance count (the Experiment 1 contrast between test4-6 and
// test7-10).
func TestJitterDrivesUniqueInstances(t *testing.T) {
	aligned := Testcases[3].Scale(0.02)
	aligned.RowJitters = []int64{0}
	many := Testcases[3].Scale(0.02) // keeps the 12 jitters

	da, err := Generate(aligned)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := Generate(many)
	if err != nil {
		t.Fatal(err)
	}
	ua, um := len(da.UniqueInstances()), len(dm.UniqueInstances())
	if um <= ua {
		t.Fatalf("jittered unique instances %d must exceed aligned %d", um, ua)
	}
	if um < 2*ua {
		t.Errorf("jitter effect weak: %d vs %d", um, ua)
	}
}

func TestAES14Generates(t *testing.T) {
	spec := AES14.Scale(0.01)
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tech.NodeNM != 14 {
		t.Fatal("wrong node")
	}
	res := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()
	if res.Stats.FailedPins != 0 {
		t.Fatalf("14nm FailedPins = %d of %d", res.Stats.FailedPins, res.Stats.TotalPins)
	}
	// Off-track access must dominate (Fig. 9): the misaligned library leaves
	// no on-track-clean enclosures.
	if res.Stats.OffTrackAPs < res.Stats.TotalAPs/2 {
		t.Errorf("off-track APs = %d of %d, expected the majority", res.Stats.OffTrackAPs, res.Stats.TotalAPs)
	}
}

func TestScale(t *testing.T) {
	s := Testcases[4].Scale(0.1)
	if s.StdCells >= Testcases[4].StdCells || s.StdCells < 20 {
		t.Errorf("scaled cells = %d", s.StdCells)
	}
	if s.DieW >= Testcases[4].DieW {
		t.Error("die not scaled")
	}
	full := Testcases[4].Scale(1.5)
	if full.Name != Testcases[4].Name {
		t.Error("Scale(>=1) must be identity")
	}
}

// TestMultiHeightSuite: the pao_mh testcase mixes double-height cells into
// the placement and still reaches zero failed pins (paper future work (i)).
func TestMultiHeightSuite(t *testing.T) {
	spec := MultiHeight.Scale(0.03)
	spec.MultiHeightEvery = MultiHeight.MultiHeightEvery // Scale preserves it
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if problems := d.Validate(5); len(problems) > 0 {
		t.Fatalf("structural problems: %v", problems)
	}
	doubles := 0
	for _, inst := range d.Instances {
		if inst.Master.Name == "DFF2HX1" {
			doubles++
			if inst.Master.Size.Y != 2*d.Tech.SiteHeight {
				t.Fatal("wrong double-height size")
			}
		}
	}
	if doubles == 0 {
		t.Fatal("no double-height cells placed")
	}
	res := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()
	if res.Stats.FailedPins != 0 {
		t.Fatalf("FailedPins = %d of %d with %d double-height cells",
			res.Stats.FailedPins, res.Stats.TotalPins, doubles)
	}
	t.Logf("placed %d double-height cells among %d, %d pins clean",
		doubles, len(d.Instances), res.Stats.TotalPins)
}
