package render

import (
	"strings"
	"testing"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/guide"
	"repro/internal/pao"
	"repro/internal/router"
	"repro/internal/suite"
)

func TestRenderDesignWindow(t *testing.T) {
	d, err := suite.Generate(suite.Testcases[0].Scale(0.01))
	if err != nil {
		t.Fatal(err)
	}
	res := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()

	win := geom.R(0, 0, 20000, 10000)
	c := NewCanvas(win)
	c.DrawDesign(d, 2)
	c.DrawAccess(d, res)
	var b strings.Builder
	if err := c.WriteSVG(&b, "unit test"); err != nil {
		t.Fatal(err)
	}
	svg := b.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not an SVG document")
	}
	for _, want := range []string{`class="pin"`, `class="cell"`, `class="accessPoint"`, "unit test"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %s", want)
		}
	}
	// Shapes outside the window must be clipped away entirely: the SVG
	// coordinates stay within the viewport (plus the caption strip).
	if strings.Contains(svg, `x="-`) {
		t.Error("negative x coordinate leaked into the SVG")
	}
}

func TestRenderRoutingAndViolations(t *testing.T) {
	d, err := suite.Generate(suite.Testcases[4].Scale(0.001))
	if err != nil {
		t.Fatal(err)
	}
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	r, err := router.New(d, router.Config{Mode: router.AccessAdHoc})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Route()
	router.Check(a, res)
	if len(res.Violations) == 0 {
		t.Skip("no violations to render at this scale")
	}

	win := ViolationWindow(d, res.Violations, 8000)
	if win.Width() != 8000 || win.Height() != 8000 {
		t.Fatalf("window = %v", win)
	}
	c := NewCanvas(win)
	c.DrawDesign(d, 4)
	c.DrawRouting(res, 4)
	c.DrawViolations(res.Violations)
	var b strings.Builder
	if err := c.WriteSVG(&b, "fig8"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `class="violation"`) {
		t.Error("violation markers missing")
	}
	if !strings.Contains(b.String(), "wireM") {
		t.Error("wires missing")
	}
}

func TestViolationWindowFallback(t *testing.T) {
	d, err := suite.Generate(suite.Testcases[0].Scale(0.005))
	if err != nil {
		t.Fatal(err)
	}
	win := ViolationWindow(d, nil, 4000)
	if win.Width() != 4000 || !d.Die.Overlaps(win) {
		t.Fatalf("fallback window = %v", win)
	}
	vs := []drc.Violation{
		{Where: geom.R(100, 100, 200, 200)},
		{Where: geom.R(150, 150, 250, 250)},
		{Where: geom.R(90000, 90000, 90100, 90100)},
	}
	win = ViolationWindow(d, vs, 4000)
	if !win.ContainsPt(geom.Pt(150, 150)) {
		t.Fatalf("window %v must center on the dense pair", win)
	}
}

func TestCongestionHeatmap(t *testing.T) {
	d, err := suite.Generate(suite.Testcases[4].Scale(0.003))
	if err != nil {
		t.Fatal(err)
	}
	gr := guide.New(d, guide.Config{})
	gr.Route()
	_, _, gcell := gr.Dims()
	var b strings.Builder
	if err := CongestionHeatmap(&b, d.Die, gcell, gr.CellLoad, "congestion"); err != nil {
		t.Fatal(err)
	}
	svg := b.String()
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "congestion") {
		t.Fatal("heatmap SVG malformed")
	}
	if !strings.Contains(svg, `class="gcell"`) {
		t.Fatal("no gcells rendered (no load anywhere?)")
	}
	// Saturation clamps and color interpolation.
	var b2 strings.Builder
	if err := CongestionHeatmap(&b2, d.Die, gcell, func(cx, cy int) float64 { return 5.0 }, "hot"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "#ff0000") {
		t.Error("fully-overloaded map must saturate to red")
	}
}
