// Package render draws design windows — cells, pins, access points, routed
// wires, vias and DRC markers — as standalone SVG files. The experiment
// binaries use it to produce the visual analogues of the paper's Fig. 8
// (routed pin access comparison) and Fig. 9 (14 nm cell pin accesses).
package render

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/db"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/pao"
	"repro/internal/router"
)

// layerColors indexes metal number; cuts and markers have fixed colors.
var layerColors = []string{
	"#888888", // 0 unused
	"#1f77b4", // M1 blue
	"#d62728", // M2 red
	"#2ca02c", // M3 green
	"#ff7f0e", // M4 orange
	"#9467bd", // M5 purple
	"#8c564b", // M6 brown
	"#e377c2", // M7 pink
	"#7f7f7f", // M8 gray
	"#bcbd22", // M9 olive
}

func colorFor(layer int) string {
	if layer >= 0 && layer < len(layerColors) {
		return layerColors[layer]
	}
	return "#000000"
}

// Canvas accumulates SVG shapes in design coordinates and renders them
// scaled into the given window.
type Canvas struct {
	Window geom.Rect // design-coordinate viewport
	// PixelsPerMicron controls the output size (default 100).
	PixelsPerMicron float64

	shapes []string
	legend []string
	seen   map[string]bool
}

// NewCanvas creates a canvas over the given design window.
func NewCanvas(window geom.Rect) *Canvas {
	return &Canvas{Window: window, PixelsPerMicron: 100, seen: map[string]bool{}}
}

func (c *Canvas) scale() float64 { return c.PixelsPerMicron / 1000.0 }

func (c *Canvas) x(v int64) float64 { return float64(v-c.Window.XL) * c.scale() }

// SVG y grows downward; flip so the design's +y points up.
func (c *Canvas) y(v int64) float64 { return float64(c.Window.YH-v) * c.scale() }

func (c *Canvas) addRect(r geom.Rect, fill, stroke string, opacity float64, class string) {
	clipped, ok := r.Intersect(c.Window)
	if !ok || clipped.Empty() {
		return
	}
	c.shapes = append(c.shapes, fmt.Sprintf(
		`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="%s" stroke-width="0.5" fill-opacity="%.2f" class="%s"/>`,
		c.x(clipped.XL), c.y(clipped.YH),
		float64(clipped.Width())*c.scale(), float64(clipped.Height())*c.scale(),
		fill, stroke, opacity, class))
	if class != "" && !c.seen[class] {
		c.seen[class] = true
		c.legend = append(c.legend, fmt.Sprintf("%s:%s", class, fill))
	}
}

func (c *Canvas) addMarker(r geom.Rect, class string) {
	clipped, ok := r.Bloat(10).Intersect(c.Window)
	if !ok {
		return
	}
	c.shapes = append(c.shapes, fmt.Sprintf(
		`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="none" stroke="#ff0000" stroke-width="1.5" stroke-dasharray="4,2" class="%s"/>`,
		c.x(clipped.XL), c.y(clipped.YH),
		float64(clipped.Width())*c.scale(), float64(clipped.Height())*c.scale(), class))
}

func (c *Canvas) addCross(p geom.Point, class string) {
	if !c.Window.ContainsPt(p) {
		return
	}
	x, y := c.x(p.X), c.y(p.Y)
	const a = 4.0
	c.shapes = append(c.shapes, fmt.Sprintf(
		`<path d="M %.2f %.2f L %.2f %.2f M %.2f %.2f L %.2f %.2f" stroke="#000000" stroke-width="1.2" class="%s"/>`,
		x-a, y-a, x+a, y+a, x-a, y+a, x+a, y-a, class))
}

// DrawDesign draws the fixed geometry (cell outlines, pins, obstructions)
// inside the window, restricted to metal layers <= maxLayer.
func (c *Canvas) DrawDesign(d *db.Design, maxLayer int) {
	for _, inst := range d.Instances {
		bbox := inst.BBox()
		if !bbox.Touches(c.Window) {
			continue
		}
		c.addRect(bbox, "none", "#999999", 0, "cell")
		for _, pin := range inst.Master.Pins {
			class := "pin"
			if pin.Use != db.UseSignal && pin.Use != db.UseClock {
				class = "rail"
			}
			for _, s := range inst.PinShapes(pin) {
				if s.Layer <= maxLayer {
					op := 0.55
					if class == "rail" {
						op = 0.2
					}
					c.addRect(s.Rect, colorFor(s.Layer), "none", op, class)
				}
			}
		}
		for _, s := range inst.ObsShapes() {
			if s.Layer <= maxLayer {
				c.addRect(s.Rect, "#444444", "none", 0.3, "obs")
			}
		}
	}
}

// DrawAccess marks the selected access points of every pin in the window.
func (c *Canvas) DrawAccess(d *db.Design, res *pao.Result) {
	for _, net := range d.Nets {
		for _, t := range net.Terms {
			ap := res.AccessPointFor(t.Inst, t.Pin)
			if ap == nil {
				continue
			}
			if v := ap.Primary(); v != nil {
				c.addRect(v.BotRect(ap.Pos), "none", "#000000", 0, "viaEnc")
				for _, cut := range v.CutRects(ap.Pos) {
					c.addRect(cut, "#000000", "none", 0.8, "viaCut")
				}
			}
			c.addCross(ap.Pos, "accessPoint")
		}
	}
}

// DrawRouting draws routed wires and vias.
func (c *Canvas) DrawRouting(res *router.Result, maxLayer int) {
	for _, w := range res.Wires {
		if w.Layer <= maxLayer {
			c.addRect(w.Rect, colorFor(w.Layer), "none", 0.45, fmt.Sprintf("wireM%d", w.Layer))
		}
	}
	for _, v := range res.Vias {
		for _, cut := range v.Def.CutRects(v.Pos) {
			c.addRect(cut, "#000000", "none", 0.8, "viaCut")
		}
	}
}

// DrawViolations adds the dashed red markers the paper's Fig. 8 uses.
func (c *Canvas) DrawViolations(vs []drc.Violation) {
	for _, v := range vs {
		c.addMarker(v.Where, "violation")
	}
}

// WriteSVG renders the accumulated scene.
func (c *Canvas) WriteSVG(w io.Writer, title string) error {
	width := float64(c.Window.Width()) * c.scale()
	height := float64(c.Window.Height()) * c.scale()
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.2f %.2f">`+"\n",
		width, height+20, width, height+20)
	fmt.Fprintf(&b, `<rect width="%.2f" height="%.2f" fill="#ffffff"/>`+"\n", width, height+20)
	for _, s := range c.shapes {
		b.WriteString(s)
		b.WriteByte('\n')
	}
	sort.Strings(c.legend)
	fmt.Fprintf(&b, `<text x="4" y="%.2f" font-family="monospace" font-size="10">%s — %s</text>`+"\n",
		height+14, title, strings.Join(c.legend, " "))
	fmt.Fprintf(&b, "</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ViolationWindow picks a window around the densest violation area — the
// automatic analogue of the paper's hand-picked Fig. 8 cases. Falls back to
// the design die center when there are no violations.
func ViolationWindow(d *db.Design, vs []drc.Violation, size int64) geom.Rect {
	if len(vs) == 0 {
		ctr := d.Die.Center()
		return geom.R(ctr.X-size/2, ctr.Y-size/2, ctr.X+size/2, ctr.Y+size/2)
	}
	// Count violations within size/2 of each violation; take the best center.
	best, bestCount := vs[0].Where.Center(), -1
	for _, v := range vs {
		ctr := v.Where.Center()
		win := geom.R(ctr.X-size/2, ctr.Y-size/2, ctr.X+size/2, ctr.Y+size/2)
		count := 0
		for _, u := range vs {
			if win.ContainsPt(u.Where.Center()) {
				count++
			}
		}
		if count > bestCount {
			best, bestCount = ctr, count
		}
	}
	return geom.R(best.X-size/2, best.Y-size/2, best.X+size/2, best.Y+size/2)
}

// CongestionHeatmap renders a global-routing congestion map: one translucent
// cell per gcell, colored by edge usage relative to capacity (green under,
// red over). usage and capacity describe horizontal-plus-vertical demand per
// gcell, as reported by the guide package's global router.
func CongestionHeatmap(w io.Writer, die geom.Rect, gcell int64, load func(cx, cy int) float64, title string) error {
	c := NewCanvas(die)
	c.PixelsPerMicron = 20
	nx := int(die.Width()/gcell) + 1
	ny := int(die.Height()/gcell) + 1
	for cy := 0; cy < ny; cy++ {
		for cx := 0; cx < nx; cx++ {
			f := load(cx, cy)
			if f <= 0 {
				continue
			}
			if f > 1.5 {
				f = 1.5
			}
			// Green (low) to red (high) through yellow.
			rr := int(255 * minF(f/0.75, 1))
			gg := int(255 * minF((1.5-f)/0.75, 1))
			x := die.XL + int64(cx)*gcell
			y := die.YL + int64(cy)*gcell
			c.addRect(geom.R(x, y, x+gcell, y+gcell),
				fmt.Sprintf("#%02x%02x00", rr, gg), "none", 0.6, "gcell")
		}
	}
	return c.WriteSVG(w, title)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// DrawRect adds one raw rectangle in the given metal layer's color — for
// illustration tooling that composes scenes without a full design.
func (c *Canvas) DrawRect(r geom.Rect, layer int) {
	c.addRect(r, colorFor(layer), "none", 0.5, fmt.Sprintf("M%d", layer))
}
