// Package clitest provides fixtures for the cmd/ smoke tests: it generates a
// small suite testcase and serializes it to a LEF/DEF pair in a test temp
// directory, so every tool exercises its real parse path end to end.
package clitest

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/db"
	"repro/internal/def"
	"repro/internal/lef"
	"repro/internal/suite"
)

// SmallSpec is the shared tiny testcase (≈90 cells) used by the CLI smoke
// tests; the fixed seed keeps every tool's output deterministic.
func SmallSpec() suite.Spec {
	return suite.Testcases[0].Scale(0.01).WithSeed(7)
}

// WriteLEFDEF generates spec, applies the optional mutation (e.g. forcing an
// overlap so DRC has something to find), and writes the design as a LEF/DEF
// pair under a fresh temp directory, returning both paths.
func WriteLEFDEF(tb testing.TB, spec suite.Spec, mutate func(*db.Design)) (lefPath, defPath string) {
	tb.Helper()
	d, err := suite.Generate(spec)
	if err != nil {
		tb.Fatal(err)
	}
	if mutate != nil {
		mutate(d)
	}
	dir := tb.TempDir()
	lefPath = filepath.Join(dir, d.Name+".lef")
	defPath = filepath.Join(dir, d.Name+".def")

	lf, err := os.Create(lefPath)
	if err != nil {
		tb.Fatal(err)
	}
	if err := lef.Write(lf, d.Tech, d.Masters); err != nil {
		tb.Fatal(err)
	}
	if err := lf.Close(); err != nil {
		tb.Fatal(err)
	}
	df, err := os.Create(defPath)
	if err != nil {
		tb.Fatal(err)
	}
	if err := def.Write(df, d); err != nil {
		tb.Fatal(err)
	}
	if err := df.Close(); err != nil {
		tb.Fatal(err)
	}
	return lefPath, defPath
}

// ForceShort adds an IO pin whose shape exactly copies a connected signal
// pin's shape but binds it to a different net, so the fixed geometry carries
// a guaranteed Short — the fixture for paodrc's nonzero-exit path. (Merely
// overlapping two instances is not enough: their unconnected and power pins
// all carry NoNet, which the checker exempts pairwise.)
func ForceShort(d *db.Design) {
	if len(d.Nets) < 2 || len(d.Nets[0].Terms) == 0 {
		panic("clitest: design too small to force a short")
	}
	term := d.Nets[0].Terms[0]
	shapes := term.Inst.PinShapes(term.Pin)
	io := &db.IOPin{Name: "clitest_short", Dir: db.DirInput, Shape: shapes[0]}
	d.IOPins = append(d.IOPins, io)
	d.Nets[1].IOPins = append(d.Nets[1].IOPins, io)
}
