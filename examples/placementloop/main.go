// placementloop: the use case the paper's runtime discussion motivates —
// "support of placement optimizations (i.e., detailed placement, sizing,
// buffering), where frequent changes in placement require a tremendous
// amount of inter-cell pin access analysis" (Section IV-B).
//
// The example runs a mock detailed-placement loop: in each iteration a
// handful of cells nudge along their rows, and pin access is refreshed two
// ways — a full re-analysis from scratch, and the incremental Rebind API that
// reuses every already-analyzed unique-instance class. Both paths must agree
// on the failed-pin count; the speedup is the point.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/pao"
	"repro/internal/report"
	"repro/internal/suite"
)

func main() {
	scale := flag.Float64("scale", 0.05, "testcase scale factor")
	iters := flag.Int("iters", 5, "placement iterations")
	movesPer := flag.Int("moves", 8, "cell moves per iteration")
	flag.Parse()

	d, err := suite.Generate(suite.Testcases[0].Scale(*scale))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	res := a.Run()
	fmt.Printf("initial: %d unique classes, %d/%d pins clean\n\n",
		res.Stats.NumUnique, res.Stats.TotalPins-res.Stats.FailedPins, res.Stats.TotalPins)

	rng := rand.New(rand.NewSource(99))
	t := report.New("Mock detailed-placement loop: incremental Rebind vs full re-analysis",
		"Iter", "#Moved", "Incr (ms)", "Full (ms)", "Speedup", "Incr failed", "Full failed")

	for it := 1; it <= *iters; it++ {
		moved := nudge(d, rng, *movesPer)

		start := time.Now()
		eng := a.GlobalEngine()
		a.Rebind(res, eng, moved)
		a.CountFailedPins(res, eng)
		incrMS := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		full := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()
		fullMS := float64(time.Since(start).Microseconds()) / 1000

		t.AddRow(it, len(moved), fmt.Sprintf("%.1f", incrMS), fmt.Sprintf("%.1f", fullMS),
			fmt.Sprintf("%.1fx", fullMS/incrMS), res.Stats.FailedPins, full.Stats.FailedPins)
		if res.Stats.FailedPins != full.Stats.FailedPins {
			fmt.Fprintf(os.Stderr, "MISMATCH at iteration %d: incremental %d != full %d\n",
				it, res.Stats.FailedPins, full.Stats.FailedPins)
			os.Exit(1)
		}
	}
	t.Render(os.Stdout)
	fmt.Println("\nRebind re-analyzes only never-seen placement phases and re-selects")
	fmt.Println("patterns for the touched clusters; the unique-instance cache does the rest.")
}

// nudge moves n random cells half a site sideways when the neighboring space
// allows, returning the instances that actually moved.
func nudge(d *db.Design, rng *rand.Rand, n int) []*db.Instance {
	var moved []*db.Instance
	tries := 0
	for len(moved) < n && tries < n*50 {
		tries++
		inst := d.Instances[rng.Intn(len(d.Instances))]
		if inst.Master.Class != db.ClassCore {
			continue
		}
		delta := d.Tech.SiteWidth / 2
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		cand := geom.Pt(inst.Pos.X+delta, inst.Pos.Y)
		bbox := geom.R(cand.X, cand.Y, cand.X+inst.Master.Size.X, cand.Y+inst.Master.Size.Y)
		if !d.Die.ContainsRect(bbox.Bloat(d.Tech.SiteWidth)) {
			continue
		}
		clear := true
		for _, other := range d.Instances {
			if other != inst && other.BBox().Overlaps(bbox) {
				clear = false
				break
			}
		}
		if !clear {
			continue
		}
		inst.Pos = cand
		moved = append(moved, inst)
	}
	return moved
}
