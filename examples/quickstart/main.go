// Quickstart: build a two-cell design in code, run the three-step pin access
// analysis, and print the selected access points with a small ASCII render of
// one cell — the fastest way to see the framework's moving parts.
package main

import (
	"fmt"
	"strings"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/pao"
	"repro/internal/tech"
)

func main() {
	tt := tech.N45()
	d := db.NewDesign("quickstart", tt)
	d.Die = geom.R(0, 0, 28000, 14000)
	// Track patterns: every layer's preferred direction, aligned with the
	// cell-internal grid (pitch/2 phase).
	for _, l := range tt.Metals {
		extent := d.Die.XH
		if l.Dir == tech.Horizontal {
			extent = d.Die.YH
		}
		d.Tracks = append(d.Tracks, db.TrackPattern{
			Layer: l.Num, WireDir: l.Dir, Start: l.Pitch / 2,
			Num: int(extent / l.Pitch), Step: l.Pitch,
		})
	}

	// A hand-built cell: two single-track pins on one row (B near the left
	// edge, Z near the right edge) — the geometry where boundary conflict
	// awareness earns its keep.
	master := &db.Master{
		Name: "DEMO", Class: db.ClassCore, Size: geom.Pt(560, 1400),
		Pins: []*db.MPin{
			{Name: "B", Dir: db.DirInput, Use: db.UseSignal,
				Shapes: []db.Shape{{Layer: 1, Rect: geom.R(70, 455, 210, 525)}}},
			{Name: "Z", Dir: db.DirOutput, Use: db.UseSignal,
				Shapes: []db.Shape{{Layer: 1, Rect: geom.R(350, 455, 490, 525)}}},
			{Name: "VSS", Dir: db.DirInout, Use: db.UseGround,
				Shapes: []db.Shape{{Layer: 1, Rect: geom.R(0, 0, 560, 70)}}},
			{Name: "VDD", Dir: db.DirInout, Use: db.UsePower,
				Shapes: []db.Shape{{Layer: 1, Rect: geom.R(0, 1330, 560, 1400)}}},
		},
	}
	must(d.AddMaster(master))
	i0 := place(d, "u0", master, 0)
	i1 := place(d, "u1", master, 560) // abuts u0: same unique instance, Step-3 material
	d.Nets = []*db.Net{
		{Name: "n0", Terms: []db.Term{{Inst: i0, Pin: master.PinByName("Z")}, {Inst: i1, Pin: master.PinByName("B")}}},
		{Name: "n1", Terms: []db.Term{{Inst: i0, Pin: master.PinByName("B")}}},
		{Name: "n2", Terms: []db.Term{{Inst: i1, Pin: master.PinByName("Z")}}},
	}

	res := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()

	fmt.Printf("unique instances: %d (u0 and u1 share one class)\n", res.Stats.NumUnique)
	fmt.Printf("access points:    %d (%d off-track)\n", res.Stats.TotalAPs, res.Stats.OffTrackAPs)
	fmt.Printf("patterns built:   %d\n", res.Stats.PatternsBuilt)
	fmt.Printf("failed pins:      %d of %d\n\n", res.Stats.FailedPins, res.Stats.TotalPins)

	for _, inst := range d.Instances {
		for _, pinName := range []string{"B", "Z"} {
			pin := master.PinByName(pinName)
			ap := res.AccessPointFor(inst, pin)
			fmt.Printf("%s/%s -> %s (primary via %s)\n", inst.Name, pinName, ap, ap.Primary().Name)
		}
	}

	fmt.Println("\nASCII render of u0 (M1, # = pin, * = selected access point):")
	fmt.Println(render(d, i0, res))
}

func place(d *db.Design, name string, m *db.Master, x int64) *db.Instance {
	inst := &db.Instance{Name: name, Master: m, Pos: geom.Pt(x, 0), Orient: geom.OrientN}
	must(d.AddInstance(inst))
	return inst
}

// render draws the instance's M1 pin shapes and selected access points on a
// character grid (one cell per 70x70 nm).
func render(d *db.Design, inst *db.Instance, res *pao.Result) string {
	const cell = 70
	bbox := inst.BBox()
	w := int(bbox.Width() / cell)
	h := int(bbox.Height() / cell)
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", w))
	}
	plot := func(r geom.Rect, ch byte) {
		for y := (r.YL - bbox.YL) / cell; y < (r.YH-bbox.YL)/cell && int(y) < h; y++ {
			for x := (r.XL - bbox.XL) / cell; x < (r.XH-bbox.XL)/cell && int(x) < w; x++ {
				if x >= 0 && y >= 0 {
					grid[h-1-int(y)][x] = ch
				}
			}
		}
	}
	for _, pin := range inst.Master.Pins {
		ch := byte('#')
		if pin.Use != db.UseSignal {
			ch = '='
		}
		for _, s := range inst.PinShapes(pin) {
			if s.Layer == 1 {
				plot(s.Rect, ch)
			}
		}
	}
	for _, pin := range inst.Master.SignalPins() {
		if ap := res.AccessPointFor(inst, pin); ap != nil {
			x := (ap.Pos.X - bbox.XL) / cell
			y := (ap.Pos.Y - bbox.YL) / cell
			if int(x) < w && int(y) < h {
				grid[h-1-int(y)][x] = '*'
			}
		}
	}
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
