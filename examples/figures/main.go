// figures: renders SVG illustrations of the paper's concept figures from
// live framework data — Fig. 1 (two unique instances: same master, different
// track offsets, different access points) and Fig. 3 (the four coordinate
// types of an up-via enclosure over a pin, with DRC markers on the dirty
// ones).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/db"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/pao"
	"repro/internal/render"
	"repro/internal/tech"
)

func main() {
	out := flag.String("out", ".", "output directory")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := fig1(filepath.Join(*out, "fig1_unique_instances.svg")); err != nil {
		fmt.Fprintln(os.Stderr, "fig1:", err)
		os.Exit(1)
	}
	if err := fig3(filepath.Join(*out, "fig3_coordinate_types.svg")); err != nil {
		fmt.Fprintln(os.Stderr, "fig3:", err)
		os.Exit(1)
	}
	fmt.Println("wrote fig1_unique_instances.svg and fig3_coordinate_types.svg to", *out)
}

// fig1 places the same master at two track phases and renders both with
// their (different) selected access points.
func fig1(path string) error {
	tt := tech.N45()
	d := db.NewDesign("fig1", tt)
	d.Die = geom.R(0, 0, 14000, 7000)
	for _, l := range tt.Metals {
		extent := d.Die.XH
		if l.Dir == tech.Horizontal {
			extent = d.Die.YH
		}
		d.Tracks = append(d.Tracks, db.TrackPattern{
			Layer: l.Num, WireDir: l.Dir, Start: l.Pitch / 2,
			Num: int(extent / l.Pitch), Step: l.Pitch,
		})
	}
	m := &db.Master{Name: "F1", Class: db.ClassCore, Size: geom.Pt(560, 1400),
		Pins: []*db.MPin{
			{Name: "A", Dir: db.DirInput, Use: db.UseSignal,
				Shapes: []db.Shape{{Layer: 1, Rect: geom.R(70, 455, 490, 525)}}},
		}}
	if err := d.AddMaster(m); err != nil {
		return err
	}
	i0 := &db.Instance{Name: "a", Master: m, Pos: geom.Pt(700, 1400), Orient: geom.OrientN}
	i1 := &db.Instance{Name: "b", Master: m, Pos: geom.Pt(1960, 1400), Orient: geom.OrientN} // +70: new phase
	i1.Pos.X += 70
	for _, inst := range []*db.Instance{i0, i1} {
		if err := d.AddInstance(inst); err != nil {
			return err
		}
	}
	d.Nets = []*db.Net{{Name: "n", Terms: []db.Term{
		{Inst: i0, Pin: m.PinByName("A")}, {Inst: i1, Pin: m.PinByName("A")},
	}}}
	if got := len(d.UniqueInstances()); got != 2 {
		return fmt.Errorf("expected 2 unique instances, got %d", got)
	}
	res := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()

	c := render.NewCanvas(geom.R(500, 1200, 3000, 3100))
	c.PixelsPerMicron = 300
	c.DrawDesign(d, 2)
	c.DrawAccess(d, res)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.WriteSVG(f, "Fig. 1: same master, different track offsets -> different unique instances")
}

// fig3 shows a via enclosure at the four preferred-direction coordinate
// types over one pin bar, marking the min-step violations of the two
// track-derived placements.
func fig3(path string) error {
	tt := tech.N45()
	l := tt.Metal(1)
	v := tt.ViaByName("VIA1_H")
	c := render.NewCanvas(geom.R(0, 250, 5200, 700))
	c.PixelsPerMicron = 300

	// Four copies of the TestMinStepFig3 pin bar (y 400..470, center 435 —
	// between the tracks at 350 and 490) with the enclosure at each
	// y-coordinate type. The first two step off the pin, the last two align.
	type scenario struct {
		name string
		y    int64 // via y coordinate
	}
	scenarios := []scenario{
		{"onTrack", 490},     // nearest track: enclosure steps off the pin
		{"halfTrack", 420},   // track midpoint: still steps off
		{"shapeCenter", 435}, // bar center: enclosure coincides with the bar
		{"encBoundary", 435}, // enclosure-boundary (same point for a 1-width bar)
	}
	var marks []drc.Violation
	for i, sc := range scenarios {
		x0 := int64(200 + i*1300)
		bar := geom.R(x0, 400, x0+900, 470)
		p := geom.Pt(x0+450, sc.y)
		vs := drc.CheckMinStepUnion(l, []geom.Rect{bar, v.BotRect(p)})
		marks = append(marks, vs...)
		cDrawRect(c, bar, 1)
		cDrawRect(c, v.BotRect(p), 2)
	}
	// Each dirty placement yields two step markers (one per side of the
	// enclosure bump); the two clean placements yield none.
	if len(marks) != 4 {
		return fmt.Errorf("expected 4 step markers from the two dirty placements, got %d", len(marks))
	}
	c.DrawViolations(marks)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.WriteSVG(f, "Fig. 3: y-coordinate types (onTrack/halfTrack step off the pin; shapeCenter/encBoundary are clean)")
}

// cDrawRect draws one rectangle through a throwaway single-shape design so
// the example stays within the render package's public API.
func cDrawRect(c *render.Canvas, r geom.Rect, layer int) {
	c.DrawRect(r, layer)
}
