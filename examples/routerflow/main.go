// routerflow: the Experiment 3 analogue. The same scaled pao_test5 is routed
// twice on the track-graph router substrate — once with ad-hoc pin access
// (drop the default via at the crossing nearest each pin, Dr. CU-style) and
// once entering through PAAF's selected access points — and the post-route
// DRC counts are compared. A violation-rule breakdown shows the ad-hoc mode's
// signature: M1 min-step and cut-spacing violations right at the pins.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/db"
	"repro/internal/exp"
	"repro/internal/pao"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/router"
	"repro/internal/suite"
)

func main() {
	scale := flag.Float64("scale", 0.002, "testcase scale factor")
	svgDir := flag.String("svg", "", "directory for Fig. 8-style SVG renders (empty: skip)")
	flag.Parse()

	rows, err := exp.RunExp3(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	exp.RenderExp3(os.Stdout, rows)

	// Per-rule breakdown for both modes.
	spec := suite.Testcases[4].Scale(*scale)
	t := report.New("Violation breakdown by rule/layer", "Rule", "adhoc", "paaf")
	counts := map[string][2]int{}
	for i, mode := range []router.AccessMode{router.AccessAdHoc, router.AccessPAAF} {
		d, err := suite.Generate(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		a := pao.NewAnalyzer(d, pao.DefaultConfig())
		cfg := router.Config{Mode: mode}
		if mode == router.AccessPAAF {
			cfg.Access = a.Run()
		}
		r, err := router.New(d, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res := r.Route()
		router.Check(a, res)
		for _, v := range res.Violations {
			key := v.Rule + "/" + v.Layer
			c := counts[key]
			c[i]++
			counts[key] = c
		}
		if *svgDir != "" {
			if err := writeSVG(*svgDir, mode.String(), d, res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.AddRow(k, counts[k][0], counts[k][1])
	}
	t.Render(os.Stdout)

	if *svgDir != "" {
		fmt.Printf("\nSVG renders written to %s (fig8_adhoc.svg, fig8_paaf.svg)\n", *svgDir)
	}
	fmt.Println("\nThe M1 min-step and V12 cut-spacing rows exist only in ad-hoc mode: those")
	fmt.Println("are misplaced pin-access vias, the defect class the paper's framework removes")
	fmt.Println("(755 DRCs for Dr. CU 2.0 vs 2 for PAAF on the full test5, Section IV-B).")
}

// writeSVG renders the densest-violation window of the routed design — the
// automatic analogue of the paper's Fig. 8 cases.
func writeSVG(dir, mode string, d *db.Design, res *router.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	win := render.ViolationWindow(d, res.Violations, 12000)
	c := render.NewCanvas(win)
	c.DrawDesign(d, 3)
	c.DrawRouting(res, 3)
	c.DrawViolations(res.Violations)
	f, err := os.Create(filepath.Join(dir, "fig8_"+mode+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	return c.WriteSVG(f, "Fig. 8 analogue, "+mode+" access (dashed red = DRC)")
}
