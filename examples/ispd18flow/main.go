// ispd18flow: generate the synthetic ISPD-2018-style suite and reproduce the
// paper's Experiments 1 and 2 (Tables II and III) on a subset, at a
// laptop-friendly scale. Pass -scale and -cases to go bigger.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/suite"
)

func main() {
	scale := flag.Float64("scale", 0.02, "testcase scale factor")
	cases := flag.String("cases", "pao_test1,pao_test4,pao_test7", "testcases to run")
	flag.Parse()

	var specs []suite.Spec
	for _, name := range strings.Split(*cases, ",") {
		s, err := suite.ByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		specs = append(specs, s)
	}

	rows1 := make([]exp.Exp1Row, 0, len(specs))
	rows2 := make([]exp.Exp2Row, 0, len(specs))
	for _, s := range specs {
		r1, err := exp.RunExp1(s, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rows1 = append(rows1, r1)
		r2, err := exp.RunExp2(s, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rows2 = append(rows2, r2)
	}
	exp.RenderExp1(os.Stdout, rows1)
	fmt.Println()
	exp.RenderExp2(os.Stdout, rows2)

	fmt.Println("\nReading the tables:")
	fmt.Println(" - PAAF generates more access points than the TrRte baseline and none are dirty;")
	fmt.Println(" - the baseline fails pins outright; PAAF without BCA fails a few at cell")
	fmt.Println("   boundaries; PAAF with BCA + cluster selection fails none (the paper's Table III).")
}
