// advanced14nm: the Fig. 9 study. A commercial-style 14 nm library whose pin
// fingers are deliberately misaligned against the routing tracks is analyzed
// by the framework; off-track access (shape-center and enclosure-boundary
// coordinates) kicks in automatically and every pin still gets a DRC-clean
// access point. The example also breaks generated access points down by
// coordinate type to show where they came from.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/db"
	"repro/internal/exp"
	"repro/internal/geom"
	"repro/internal/pao"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/suite"
)

func main() {
	scale := flag.Float64("scale", 0.05, "testcase scale factor (1.0 = the paper's 20K instances)")
	svgPath := flag.String("svg", "", "write a Fig. 9-style render of a cell window to this file")
	flag.Parse()

	res, err := exp.RunAES14(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	exp.RenderAES14(os.Stdout, res)

	// Break access points down by the preferred-direction coordinate type.
	d, err := suite.Generate(suite.AES14.Scale(*scale))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	byType := map[pao.CoordType]int{}
	for _, ui := range d.UniqueInstances() {
		ua := a.AnalyzeUnique(ui)
		for _, pa := range ua.Pins {
			for _, ap := range pa.APs {
				byType[ap.OnPref]++
			}
		}
	}
	t := report.New("Access points by preferred-direction coordinate type (Section II-C)",
		"onTrack(0)", "halfTrack(1)", "shapeCenter(2)", "encBoundary(3)")
	t.AddRow(byType[pao.OnTrack], byType[pao.HalfTrack], byType[pao.ShapeCenter], byType[pao.EncBoundary])
	t.Render(os.Stdout)

	if *svgPath != "" {
		full := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()
		win := sampleWindow(d)
		c := render.NewCanvas(win)
		c.PixelsPerMicron = 400
		c.DrawDesign(d, 2)
		c.DrawAccess(d, full)
		f, err := os.Create(*svgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := c.WriteSVG(f, "Fig. 9 analogue: 14nm off-track pin accesses (x = access point)"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nSVG render written to %s\n", *svgPath)
	}

	fmt.Println("\nWith the misaligned 14nm library no on-track y coordinate yields a clean")
	fmt.Println("enclosure, so shape-center/enclosure-boundary access carries the design —")
	fmt.Println("\"off-track pin access is enabled automatically in PAAF\" (Fig. 9).")
}

// sampleWindow frames a handful of placed cells mid-die.
func sampleWindow(d *db.Design) geom.Rect {
	ctr := d.Die.Center()
	best := d.Instances[0]
	bestDist := int64(1) << 62
	for _, inst := range d.Instances {
		c := inst.BBox().Center()
		if dist := c.ManhattanDist(ctr); dist < bestDist {
			best, bestDist = inst, dist
		}
	}
	return best.BBox().Bloat(2 * d.Tech.SiteWidth)
}
