# Convenience targets for the PAO reproduction. Everything is plain `go`
# underneath; see README.md.

GO ?= go

.PHONY: all build test vet bench bench-json bench-check bench-cold bench-eco experiments \
	experiments-full examples clean difftest eco-difftest golden-update \
	fuzz-smoke cover faultinject serve-smoke telemetry-smoke tenant-smoke \
	dist-difftest dist-smoke

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Differential DRC oracle + metamorphic invariants under the race detector:
# thousands of seeded via-drop/spacing queries replayed through the engine and
# the naive reference checker, failing on any verdict divergence.
difftest:
	$(GO) test -race -v -run 'TestDifferential|TestTranslation|TestMirror|TestWorkers|TestRebind' ./internal/difftest

# Differential ECO harness: seeded ECO scripts (moves/swaps/inserts/deletes)
# applied to a resident session must produce byte-identical snapshots to a
# fresh analysis of the mutated design, cache-on and cache-off, plus the
# metamorphic invariants (site-move == Rebind, apply-then-revert == original,
# disjoint-op order independence), the /v1/eco server path under the race
# detector, and the scoped via-cache invalidation unit tests.
eco-difftest:
	$(GO) test -v -run 'TestECO' ./internal/difftest
	$(GO) test -race -run 'TestServeECO' ./internal/serve
	$(GO) test -run 'TestECO' ./internal/pao
	$(GO) test -run 'TestViaCache' ./internal/drc

# Fault-injection campaign under the race detector: the injector's own unit
# tests plus the pipeline-level quarantine/cancellation/respawn properties
# (K panics -> exactly K failed classes with byte-identical survivors,
# deadline -> partial result, worker death -> respawn) and the metamorphic
# fault tests (cancel-then-rerun equals clean, worker counts agree under
# injected faults).
faultinject:
	$(GO) test -race ./internal/faultinject
	$(GO) test -race -v -run 'TestFault' ./internal/pao ./internal/difftest

# Oracle-server smoke campaign under the race detector: start paoserve on a
# suite testcase with one class quarantined by an injected fault, run
# concurrent queries (degraded class answers 200 + degraded:true, never 500),
# deliver a real SIGTERM (drain + final snapshot, exit 0), then warm-restart
# from the snapshot without recomputing and require byte-identical answers.
# The serve package tests cover shedding (429/503 + Retry-After), the
# breaker/readyz lifecycle, and corrupt-snapshot fallback.
serve-smoke:
	$(GO) test -race -v -run 'TestServeSmoke' ./cmd/paoserve
	$(GO) test -race ./internal/serve

# Telemetry smoke campaign under the race detector: boot paoserve with
# trace-sample=1, run concurrent queries (correlation IDs echoed) while
# scraping /metrics — every scrape must parse under the strict Prometheus
# text-format checker — then audit a live decision via /v1/access/explain and
# check the slow log's trace exemplars. The telemetry package tests cover the
# exposition writer, histogram merge rules, logger, sampler and slow-log ring;
# bench-check proves the nil-by-default hooks stay alloc-neutral.
telemetry-smoke:
	$(GO) test -race -v -run 'TestTelemetrySmoke' ./cmd/paoserve
	$(GO) test -race ./internal/telemetry ./internal/serve
	$(GO) run ./cmd/paobench -q -out /tmp/bench-current.json -compare BENCH_PR10.json

# Multi-tenant smoke campaign under the race detector: one paoserve process
# serving three designs (one at boot, two registered over POST /v1/designs), a
# flood tenant storming one design's deliberately tiny bulkhead while a steady
# tenant queries the other two. The storm must shed strictly inside its
# bulkhead (other designs all 200 and ready), the merged /metrics must parse
# strictly with per-design/per-tenant labels, an explicit evict + lazy warm
# restart must answer byte-identically, and SIGTERM must snapshot every
# resident design. The serve package tests cover DRR fairness, eviction
# round-trips, registration hardening and the register/evict/query/ECO chaos.
tenant-smoke:
	$(GO) test -race -v -run 'TestTenantSmoke' ./cmd/paoserve
	$(GO) test -race -run 'TestManager|TestBulkhead|TestEvict|TestLRU|TestWarmWait|TestFair|TestFlood|TestTenant|TestConcurrentRegisterEvictQueryECO' ./internal/serve

# Distributed-analysis acceptance campaign under the race detector: the
# coordinator/worker shard-out must produce snapshots byte-identical to the
# single-process run — across three testcases with the memoization caches on
# and off, with network faults tearing at the wire (dropped dispatches,
# corrupted responses, jittered delays), and with a real worker subprocess
# SIGKILLed mid-run (shards relocate, health stays clean). Also covers the
# consistent-hash ring properties, the frame/partial-snapshot wire format,
# and the pao-level slice/merge round trip.
dist-difftest:
	$(GO) test -race -v ./internal/dist
	$(GO) test -race -v -run 'TestDistributedSingleProcess' ./internal/difftest
	$(GO) test -race -run 'TestPartial|TestAnalyzeSelect|TestAnalyzeClasses|TestSelectClusters' ./internal/pao

# Distributed smoke: boot a real paoworker (ready probe, SIGTERM drain) and
# run paorun -distributed against in-process shard workers, requiring reports
# identical to the single-process run.
dist-smoke:
	$(GO) test -race -v -run 'TestDistSmoke' ./cmd/paoworker ./cmd/paorun

# Re-pin the golden per-testcase result snapshots after an intentional
# behaviour change (testdata/golden/*.json).
golden-update:
	$(GO) test ./internal/difftest -update -run TestGolden

# Short coverage-guided fuzz of each parser, seeded from testdata/fuzz.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/lef
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/def
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/guide
	$(GO) test -fuzz=FuzzRegisterRequest -fuzztime=10s ./internal/serve

# Coverage over the core analysis/check packages (the CI floor gates on this).
cover:
	$(GO) test -coverprofile=coverage.out -coverpkg=./internal/pao,./internal/drc,./internal/oracle \
		./internal/pao ./internal/drc ./internal/oracle ./internal/difftest
	$(GO) tool cover -func=coverage.out | tail -1

# One benchmark run per paper table/figure plus the ablations; the output is
# kept in BENCH_PR1.txt as the PR's perf record. Also refreshes the
# machine-readable cache-speedup artifact (bench-json).
bench: bench-json
	$(GO) test -bench=. -benchmem . | tee BENCH_PR1.txt

# Measure the Step 1/2/3 hot paths with the memoization layers on and off and
# write the machine-readable report checked in as the perf baseline.
bench-json:
	$(GO) run ./cmd/paobench -out BENCH_PR10.json

# CI regression gate: re-measure and fail on >15% regression vs the
# checked-in baseline (machine-independent metrics only; add -gate-ns on a
# quiet dedicated host to also gate wall-clock time).
bench-check:
	$(GO) run ./cmd/paobench -q -out /tmp/bench-current.json -compare BENCH_PR10.json

# Cold-path profile: only the uncached scenario variants — the pure query-
# core and check-core cost with every memo layer off. Prints to stdout; not
# gated (cold reports carry no cached metrics to compare).
bench-cold:
	$(GO) run ./cmd/paobench -cold

# ECO re-analysis scoping report: dirty-class/cluster counts for a single
# move, the resident-session apply loop vs a fresh full run, and the
# scoped-vs-wholesale via-cache eviction fractions (BENCH_PR7.json).
bench-eco:
	$(GO) run ./cmd/paobench -scale 0.01 -eco-out BENCH_PR7.json

# Laptop-scale experiment sweep (~4 minutes).
experiments:
	$(GO) run ./cmd/paoexp -exp all -scale 0.05

# Full Table-I-scale sweep (~15 minutes, several GB of RAM for test10).
experiments-full:
	$(GO) run ./cmd/paoexp -exp table1 -scale 1.0
	$(GO) run ./cmd/paoexp -exp 1      -scale 1.0
	$(GO) run ./cmd/paoexp -exp 2      -scale 1.0
	$(GO) run ./cmd/paoexp -exp 14nm   -scale 1.0
	$(GO) run ./cmd/paoexp -exp 3      -scale 0.005
	$(GO) run ./cmd/paoexp -exp ablate -scale 0.2

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ispd18flow
	$(GO) run ./examples/advanced14nm
	$(GO) run ./examples/routerflow
	$(GO) run ./examples/placementloop
	$(GO) run ./examples/figures -out /tmp/pao-figures

clean:
	$(GO) clean ./...
