# Convenience targets for the PAO reproduction. Everything is plain `go`
# underneath; see README.md.

GO ?= go

.PHONY: all build test vet bench experiments experiments-full examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One benchmark run per paper table/figure plus the ablations; the output is
# kept in BENCH_PR1.txt as the PR's perf record.
bench:
	$(GO) test -bench=. -benchmem . | tee BENCH_PR1.txt

# Laptop-scale experiment sweep (~4 minutes).
experiments:
	$(GO) run ./cmd/paoexp -exp all -scale 0.05

# Full Table-I-scale sweep (~15 minutes, several GB of RAM for test10).
experiments-full:
	$(GO) run ./cmd/paoexp -exp table1 -scale 1.0
	$(GO) run ./cmd/paoexp -exp 1      -scale 1.0
	$(GO) run ./cmd/paoexp -exp 2      -scale 1.0
	$(GO) run ./cmd/paoexp -exp 14nm   -scale 1.0
	$(GO) run ./cmd/paoexp -exp 3      -scale 0.005
	$(GO) run ./cmd/paoexp -exp ablate -scale 0.2

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ispd18flow
	$(GO) run ./examples/advanced14nm
	$(GO) run ./examples/routerflow
	$(GO) run ./examples/placementloop
	$(GO) run ./examples/figures -out /tmp/pao-figures

clean:
	$(GO) clean ./...
