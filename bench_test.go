// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation section (see DESIGN.md's per-experiment index):
//
//	BenchmarkTable1SuiteGen    — Table I   (testcase generation)
//	BenchmarkTable2Exp1        — Table II  (access point quality, TrRte vs PAAF)
//	BenchmarkTable3Exp2        — Table III (failed pins, TrRte vs PAAF w/o / w/ BCA)
//	BenchmarkFig8Exp3          — Fig. 8 / Experiment 3 (routed DRCs by access mode)
//	BenchmarkFig9Aes14nm       — Fig. 9 (14 nm off-track study)
//	BenchmarkAblation*         — design-choice sweeps DESIGN.md calls out
//	Benchmark{Step1,DP,...}    — microbenchmarks of the framework's hot paths
//
// Benchmarks run the suite at bench scale (cells and nets scaled down
// proportionally; set -benchscale to push further toward Table I sizes).
// Key result quantities are attached as custom metrics so the paper-shape
// claims are visible straight from the benchmark output.
package repro

import (
	"flag"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/exp"
	"repro/internal/geom"
	"repro/internal/pao"
	"repro/internal/router"
	"repro/internal/suite"
)

var benchScale = flag.Float64("benchscale", 0.01, "suite scale factor for benchmarks")

func BenchmarkTable1SuiteGen(b *testing.B) {
	for _, spec := range suite.Testcases {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			b.ReportAllocs()
			var cells int
			for i := 0; i < b.N; i++ {
				d, err := suite.Generate(spec.Scale(*benchScale))
				if err != nil {
					b.Fatal(err)
				}
				cells = d.NumStdCells()
			}
			b.ReportMetric(float64(cells), "cells")
		})
	}
}

func BenchmarkTable2Exp1(b *testing.B) {
	for _, spec := range suite.Testcases {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			b.ReportAllocs()
			var row exp.Exp1Row
			for i := 0; i < b.N; i++ {
				var err error
				row, err = exp.RunExp1(spec, *benchScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.NumUnique), "uniqueInsts")
			b.ReportMetric(float64(row.PaafAPs), "paafAPs")
			b.ReportMetric(float64(row.TrAPs), "trrteAPs")
			b.ReportMetric(float64(row.PaafDirty), "paafDirty")
			b.ReportMetric(float64(row.TrDirty), "trrteDirty")
		})
	}
}

func BenchmarkTable3Exp2(b *testing.B) {
	for _, spec := range suite.Testcases {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			b.ReportAllocs()
			var row exp.Exp2Row
			for i := 0; i < b.N; i++ {
				var err error
				row, err = exp.RunExp2(spec, *benchScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.TotalPins), "pins")
			b.ReportMetric(float64(row.TrFailed), "trrteFailed")
			b.ReportMetric(float64(row.NoBCAFailed), "noBcaFailed")
			b.ReportMetric(float64(row.BCAFailed), "bcaFailed")
		})
	}
}

func BenchmarkFig8Exp3(b *testing.B) {
	// The routing experiment runs on pao_test5, as in the paper.
	scale := *benchScale
	if scale > 0.02 {
		scale = 0.02 // the substrate router is not built for contest sizes
	}
	for _, mode := range []router.AccessMode{router.AccessAdHoc, router.AccessPAAF} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			var viol, accessViol int
			for i := 0; i < b.N; i++ {
				d, err := suite.Generate(suite.Testcases[4].Scale(scale))
				if err != nil {
					b.Fatal(err)
				}
				a := pao.NewAnalyzer(d, pao.DefaultConfig())
				cfg := router.Config{Mode: mode}
				if mode == router.AccessPAAF {
					cfg.Access = a.Run()
				}
				r, err := router.New(d, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res := r.Route()
				router.Check(a, res)
				viol = len(res.Violations)
				accessViol = res.AccessViolations
			}
			b.ReportMetric(float64(viol), "DRCs")
			b.ReportMetric(float64(accessViol), "accessDRCs")
		})
	}
}

func BenchmarkFig9Aes14nm(b *testing.B) {
	b.ReportAllocs()
	var res exp.AES14Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = exp.RunAES14(*benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Failed), "failedPins")
	b.ReportMetric(float64(res.OffTrack), "offTrackAPs")
	b.ReportMetric(float64(res.TotalAPs), "APs")
}

// --- Ablation benches ------------------------------------------------------

func benchConfig(b *testing.B, cfg pao.Config) {
	b.Helper()
	b.ReportAllocs()
	d, err := suite.Generate(suite.Testcases[0].Scale(*benchScale))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var stats pao.Stats
	for i := 0; i < b.N; i++ {
		res := pao.NewAnalyzer(d, cfg).Run()
		stats = res.Stats
	}
	b.ReportMetric(float64(stats.FailedPins), "failedPins")
	b.ReportMetric(float64(stats.TotalAPs), "APs")
	b.ReportMetric(float64(stats.PatternsDropped), "droppedPatterns")
}

func BenchmarkAblationBCA(b *testing.B) {
	b.Run("on", func(b *testing.B) { benchConfig(b, pao.DefaultConfig()) })
	b.Run("off", func(b *testing.B) {
		cfg := pao.DefaultConfig()
		cfg.BCA = false
		benchConfig(b, cfg)
	})
}

func BenchmarkAblationHistory(b *testing.B) {
	b.Run("on", func(b *testing.B) { benchConfig(b, pao.DefaultConfig()) })
	b.Run("off", func(b *testing.B) {
		cfg := pao.DefaultConfig()
		cfg.HistoryAware = false
		benchConfig(b, cfg)
	})
}

func BenchmarkAblationK(b *testing.B) {
	for _, k := range []int{1, 3, 5} {
		k := k
		b.Run(map[int]string{1: "k1", 3: "k3", 5: "k5"}[k], func(b *testing.B) {
			cfg := pao.DefaultConfig()
			cfg.K = k
			benchConfig(b, cfg)
		})
	}
}

func BenchmarkAblationCoordTypes(b *testing.B) {
	b.Run("all", func(b *testing.B) { benchConfig(b, pao.DefaultConfig()) })
	b.Run("onTrackOnly", func(b *testing.B) {
		cfg := pao.DefaultConfig()
		cfg.AllowedTypes = []pao.CoordType{pao.OnTrack}
		benchConfig(b, cfg)
	})
}

// --- Microbenchmarks -------------------------------------------------------

func BenchmarkStep1AccessPoints(b *testing.B) {
	d, err := suite.Generate(suite.Testcases[0].Scale(*benchScale))
	if err != nil {
		b.Fatal(err)
	}
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	uis := d.UniqueInstances()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AnalyzeUnique(uis[i%len(uis)])
	}
}

func BenchmarkBaselineAnalyze(b *testing.B) {
	d, err := suite.Generate(suite.Testcases[0].Scale(*benchScale))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.Analyze(d)
	}
}

func BenchmarkUniqueInstanceExtraction(b *testing.B) {
	d, err := suite.Generate(suite.Testcases[3].Scale(*benchScale))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.UniqueInstances()
	}
}

func BenchmarkGeomUnionRects(b *testing.B) {
	rects := []geom.Rect{
		geom.R(0, 0, 1000, 70), geom.R(0, 0, 70, 1000), geom.R(500, 0, 570, 800),
		geom.R(200, 300, 900, 370), geom.R(850, 300, 920, 900),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geom.UnionRects(rects)
	}
}

func BenchmarkGeomMaxRects(b *testing.B) {
	rects := []geom.Rect{
		geom.R(0, 0, 1000, 70), geom.R(0, 0, 70, 1000), geom.R(500, 0, 570, 800),
		geom.R(200, 300, 900, 370),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geom.MaxRects(rects)
	}
}

func BenchmarkWorkers(b *testing.B) {
	// The paper's future-work item (ii): multi-threaded Steps 1-2.
	d, err := suite.Generate(suite.Testcases[3].Scale(*benchScale))
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4", 8: "w8"}[w], func(b *testing.B) {
			b.ReportAllocs()
			cfg := pao.DefaultConfig()
			cfg.Workers = w
			var stats pao.Stats
			for i := 0; i < b.N; i++ {
				stats = pao.NewAnalyzer(d, cfg).Run().Stats
			}
			b.ReportMetric(float64(stats.FailedPins), "failedPins")
		})
	}
}

// BenchmarkMemoization runs the internal/bench scenarios (the same ones
// `make bench-json` turns into BENCH_PR5.json): Step 1/2/3 with the
// via-verdict and via-pair caches on and off. The cached variants report
// steady-state hit rates as custom metrics.
func BenchmarkMemoization(b *testing.B) {
	for _, sc := range bench.Scenarios() {
		sc := sc
		for _, noCache := range []bool{false, true} {
			noCache := noCache
			variant := "cached"
			if noCache {
				variant = "uncached"
			}
			b.Run(sc.Name+"/"+variant, func(b *testing.B) {
				w, err := sc.Prepare(*benchScale, noCache)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w.Run()
				}
				b.StopTimer()
				if !noCache {
					s := w.Stats()
					b.ReportMetric(s.ViaHitRate()*100, "viaHit%")
					b.ReportMetric(s.PairHitRate()*100, "pairHit%")
				}
			})
		}
	}
}

func BenchmarkDRCCheckAll(b *testing.B) {
	d, err := suite.Generate(suite.Testcases[0].Scale(*benchScale * 2))
	if err != nil {
		b.Fatal(err)
	}
	eng := pao.NewAnalyzer(d, pao.DefaultConfig()).GlobalEngine()
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.CheckAllParallel(1)
		}
	})
	b.Run("parallel4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.CheckAllParallel(4)
		}
	})
}
