// Command paodrc runs the standalone design rule check over a LEF/DEF pair's
// fixed geometry (pins, obstructions, power shapes) and prints every
// violation.
//
// Usage:
//
//	paodrc -lef design.lef -def design.def [-max 50]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/def"
	"repro/internal/lef"
	"repro/internal/pao"
)

func main() {
	lefPath := flag.String("lef", "", "LEF file")
	defPath := flag.String("def", "", "DEF file")
	maxPrint := flag.Int("max", 50, "maximum violations to print")
	flag.Parse()

	if *lefPath == "" || *defPath == "" {
		fmt.Fprintln(os.Stderr, "paodrc: -lef and -def are required")
		os.Exit(2)
	}
	if err := run(*lefPath, *defPath, *maxPrint); err != nil {
		fmt.Fprintln(os.Stderr, "paodrc:", err)
		os.Exit(1)
	}
}

func run(lefPath, defPath string, maxPrint int) error {
	lf, err := os.Open(lefPath)
	if err != nil {
		return err
	}
	defer lf.Close()
	lib, err := lef.Parse(lf)
	if err != nil {
		return err
	}
	df, err := os.Open(defPath)
	if err != nil {
		return err
	}
	defer df.Close()
	d, err := def.Parse(df, lib.Tech, lib.Masters)
	if err != nil {
		return err
	}

	if problems := d.Validate(maxPrint); len(problems) > 0 {
		fmt.Printf("%s: %d structural problems\n", d.Name, len(problems))
		for _, p := range problems {
			fmt.Println(" ", p)
		}
	}
	eng := pao.NewAnalyzer(d, pao.DefaultConfig()).GlobalEngine()
	vs := eng.CheckAll()
	fmt.Printf("%s: %d shapes, %d violations\n", d.Name, eng.NumObjs(), len(vs))
	for i, v := range vs {
		if i >= maxPrint {
			fmt.Printf("... and %d more\n", len(vs)-maxPrint)
			break
		}
		fmt.Println(" ", v)
	}
	if len(vs) > 0 {
		os.Exit(1)
	}
	return nil
}
