// Command paodrc runs the standalone design rule check over a LEF/DEF pair's
// fixed geometry (pins, obstructions, power shapes) and prints every
// violation.
//
// Observability: -metrics=text|json emits the DRC engine's counters (checks
// per rule kind, query volume) and the parse/check span tree; -trace,
// -cpuprofile and -memprofile behave as in paorun.
//
// Usage:
//
//	paodrc -lef design.lef -def design.def [-max 50] [-metrics text|json]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/def"
	"repro/internal/lef"
	"repro/internal/obs"
	"repro/internal/pao"
)

func main() {
	lefPath := flag.String("lef", "", "LEF file")
	defPath := flag.String("def", "", "DEF file")
	maxPrint := flag.Int("max", 50, "maximum violations to print")
	ofl := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *lefPath == "" || *defPath == "" {
		fmt.Fprintln(os.Stderr, "paodrc: -lef and -def are required")
		os.Exit(2)
	}
	nviol, err := run(*lefPath, *defPath, *maxPrint, ofl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paodrc:", err)
		os.Exit(1)
	}
	if nviol > 0 {
		os.Exit(1)
	}
}

// run returns the violation count so the caller decides the exit status after
// the observability report has been flushed.
func run(lefPath, defPath string, maxPrint int, ofl *obs.Flags) (int, error) {
	o, finish, err := ofl.Start("paodrc")
	if err != nil {
		return 0, err
	}

	spParse := o.Root().Start("parse")
	lf, err := os.Open(lefPath)
	if err != nil {
		return 0, err
	}
	defer lf.Close()
	lib, err := lef.Parse(lf)
	if err != nil {
		return 0, err
	}
	df, err := os.Open(defPath)
	if err != nil {
		return 0, err
	}
	defer df.Close()
	d, err := def.Parse(df, lib.Tech, lib.Masters)
	if err != nil {
		return 0, err
	}
	spParse.End()

	if problems := d.Validate(maxPrint); len(problems) > 0 {
		fmt.Printf("%s: %d structural problems\n", d.Name, len(problems))
		for _, p := range problems {
			fmt.Println(" ", p)
		}
	}
	spBuild := o.Root().Start("buildengine")
	eng := pao.NewAnalyzer(d, pao.DefaultConfig()).GlobalEngine()
	spBuild.End()
	spCheck := o.Root().Start("checkall")
	vs := eng.CheckAll()
	spCheck.End()
	if reg := o.Reg(); reg != nil {
		reg.AddAll(eng.Counters.Snapshot())
	}
	fmt.Printf("%s: %d shapes, %d violations\n", d.Name, eng.NumObjs(), len(vs))
	for i, v := range vs {
		if i >= maxPrint {
			fmt.Printf("... and %d more\n", len(vs)-maxPrint)
			break
		}
		fmt.Println(" ", v)
	}
	return len(vs), finish()
}
