// Command paodrc runs the standalone design rule check over a LEF/DEF pair's
// fixed geometry (pins, obstructions, power shapes) and prints every
// violation.
//
// Observability: -metrics=text|json emits the DRC engine's counters (checks
// per rule kind, query volume) and the parse/check span tree; -trace,
// -cpuprofile and -memprofile behave as in paorun.
//
// Usage:
//
//	paodrc -lef design.lef -def design.def [-max 50] [-metrics text|json]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/def"
	"repro/internal/lef"
	"repro/internal/obs"
	"repro/internal/pao"
	"repro/internal/telemetry"
)

// options holds the parsed command line; parseFlags keeps it testable with
// an injected FlagSet and argument list.
type options struct {
	lefPath, defPath string
	maxPrint         int
	run              *cliutil.RunFlags
	obs              *obs.Flags
	tel              *telemetry.Flags
}

func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.StringVar(&o.lefPath, "lef", "", "LEF file")
	fs.StringVar(&o.defPath, "def", "", "DEF file")
	fs.IntVar(&o.maxPrint, "max", 50, "maximum violations to print")
	o.run = cliutil.RegisterRunFlags(fs)
	o.obs = obs.RegisterFlags(fs)
	o.tel = telemetry.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.lefPath == "" || o.defPath == "" {
		return nil, fmt.Errorf("-lef and -def are required")
	}
	return o, nil
}

func main() {
	opts, err := parseFlags(flag.NewFlagSet("paodrc", flag.ExitOnError), os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "paodrc:", err)
		os.Exit(2)
	}
	nviol, err := run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paodrc:", err)
	}
	os.Exit(exitCode(nviol, err))
}

// exitCode maps the run outcome to the process exit status: any violation or
// error is nonzero (cancellation distinguishes itself as 3), so CI can gate
// on a clean check.
func exitCode(nviol int, err error) int {
	if err != nil {
		return cliutil.ExitCode(err)
	}
	if nviol > 0 {
		return 1
	}
	return 0
}

// run returns the violation count so the caller decides the exit status after
// the observability report has been flushed.
func run(opts *options) (int, error) {
	ctx, stop := opts.run.Context()
	defer stop()
	o, finish, err := opts.obs.Start("paodrc")
	if err != nil {
		return 0, err
	}

	spParse := o.Root().Start("parse")
	lf, err := os.Open(opts.lefPath)
	if err != nil {
		return 0, err
	}
	defer lf.Close()
	lib, err := lef.Parse(lf)
	if err != nil {
		return 0, err
	}
	df, err := os.Open(opts.defPath)
	if err != nil {
		return 0, err
	}
	defer df.Close()
	d, err := def.Parse(df, lib.Tech, lib.Masters)
	if err != nil {
		return 0, err
	}
	spParse.End()

	t0 := time.Now()
	o, tel, err := opts.tel.Activate("paodrc", o, telemetry.Label{Name: "design", Value: d.Name})
	if err != nil {
		return 0, err
	}
	defer tel.Close()

	if problems := d.Validate(opts.maxPrint); len(problems) > 0 {
		fmt.Printf("%s: %d structural problems\n", d.Name, len(problems))
		for _, p := range problems {
			fmt.Println(" ", p)
		}
		if opts.run.FailFastSet() {
			finish()
			return len(problems), fmt.Errorf("aborting on %d structural problems (-fail-fast)", len(problems))
		}
	}
	if err := ctx.Err(); err != nil {
		finish()
		return 0, err
	}
	spBuild := o.Root().Start("buildengine")
	eng := pao.NewAnalyzer(d, pao.DefaultConfig()).GlobalEngine()
	spBuild.End()
	if err := ctx.Err(); err != nil {
		finish()
		return 0, err
	}
	spCheck := o.Root().Start("checkall")
	vs := eng.CheckAll()
	spCheck.End()
	if reg := o.Reg(); reg != nil {
		reg.AddAll(eng.Counters.Snapshot())
	}
	fmt.Printf("%s: %d shapes, %d violations\n", d.Name, eng.NumObjs(), len(vs))
	for i, v := range vs {
		if i >= opts.maxPrint {
			fmt.Printf("... and %d more\n", len(vs)-opts.maxPrint)
			break
		}
		fmt.Println(" ", v)
	}
	tel.RecordRun("drc", d.Name, telemetry.CorrIDFrom(ctx), t0, time.Since(t0), o.Root())
	return len(vs), finish()
}
