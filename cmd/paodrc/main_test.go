package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"testing"

	"repro/internal/clitest"
	"repro/internal/obs"
)

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("paodrc", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestParseFlags(t *testing.T) {
	if _, err := parseFlags(newFlagSet(), nil); err == nil {
		t.Fatal("missing -lef/-def must be an error")
	}
	o, err := parseFlags(newFlagSet(), []string{"-lef", "a.lef", "-def", "a.def", "-max", "7"})
	if err != nil {
		t.Fatal(err)
	}
	if o.maxPrint != 7 || o.obs.Metrics != "off" {
		t.Errorf("parsed values wrong: %+v", o)
	}
}

func TestExitCode(t *testing.T) {
	if c := exitCode(0, nil); c != 0 {
		t.Errorf("clean run exit = %d", c)
	}
	if c := exitCode(3, nil); c != 1 {
		t.Errorf("violations exit = %d", c)
	}
	if c := exitCode(0, errors.New("boom")); c != 1 {
		t.Errorf("error exit = %d", c)
	}
}

// TestRunCleanDesign: the generated suite geometry is DRC-clean, so the tool
// must report zero violations (exit 0 path).
func TestRunCleanDesign(t *testing.T) {
	lefPath, defPath := clitest.WriteLEFDEF(t, clitest.SmallSpec(), nil)
	opts := &options{lefPath: lefPath, defPath: defPath, maxPrint: 5, obs: &obs.Flags{}}
	nviol, err := run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if nviol != 0 {
		t.Fatalf("clean design reported %d violations", nviol)
	}
}

// TestRunViolationsFlushReport: with a foreign-net IO pin shorted onto a
// signal pin the checker must find violations AND still flush the full
// metrics report before main turns the count into a nonzero exit status.
func TestRunViolationsFlushReport(t *testing.T) {
	lefPath, defPath := clitest.WriteLEFDEF(t, clitest.SmallSpec(), clitest.ForceShort)
	var buf bytes.Buffer
	opts := &options{
		lefPath: lefPath, defPath: defPath, maxPrint: 5,
		obs: &obs.Flags{Metrics: "json", Out: &buf},
	}
	nviol, err := run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if nviol == 0 {
		t.Fatal("stacked instances produced no violations; the fixture is vacuous")
	}
	if exitCode(nviol, err) != 1 {
		t.Fatal("violations must map to exit status 1")
	}
	var rep obs.Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report not flushed as valid JSON: %v\n%s", err, buf.Bytes())
	}
	if rep.Name != "paodrc" {
		t.Errorf("report name = %q", rep.Name)
	}
	if len(rep.Counters) == 0 {
		t.Error("DRC engine counters missing from the flushed report")
	}
}
