package main

import (
	"bytes"
	"context"
	"flag"
	"io"
	"os"
	"syscall"
	"testing"
	"time"

	"repro/internal/clitest"
	"repro/internal/cliutil"
	"repro/internal/db"
	"repro/internal/def"
	"repro/internal/dist"
	"repro/internal/lef"
	"repro/internal/obs"
	"repro/internal/pao"
)

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("paoworker", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestParseFlags(t *testing.T) {
	if _, err := parseFlags(newFlagSet(), nil); err == nil {
		t.Fatal("neither -case nor -lef/-def must be an error")
	}
	if _, err := parseFlags(newFlagSet(), []string{"-case", "pao_test1", "-lef", "a.lef", "-def", "a.def"}); err == nil {
		t.Fatal("both -case and -lef/-def must be an error")
	}
	if _, err := parseFlags(newFlagSet(), []string{"-lef", "a.lef"}); err == nil {
		t.Fatal("-lef without -def must be an error")
	}
	o, err := parseFlags(newFlagSet(), []string{"-case", "pao_test1"})
	if err != nil {
		t.Fatal(err)
	}
	if o.listen != "127.0.0.1:8451" || o.k != 3 || o.noBCA {
		t.Errorf("defaults wrong: %+v", o)
	}
	o, err = parseFlags(newFlagSet(), []string{
		"-case", "pao_test2", "-scale", "0.02", "-seed", "9",
		"-listen", "127.0.0.1:0", "-k", "5", "-nobca"})
	if err != nil {
		t.Fatal(err)
	}
	if o.caseName != "pao_test2" || o.scale != 0.02 || o.seed != 9 ||
		o.listen != "127.0.0.1:0" || o.k != 5 || !o.noBCA {
		t.Errorf("parsed values wrong: %+v", o)
	}
}

func TestLoadDesignBadInputs(t *testing.T) {
	if _, err := loadDesign(&options{caseName: "nope"}); err == nil {
		t.Fatal("unknown case must be an error")
	}
	if _, err := loadDesign(&options{lefPath: "/nonexistent.lef", defPath: "/nonexistent.def"}); err == nil {
		t.Fatal("missing LEF must be an error")
	}
}

// parseLEFDEF loads the design exactly as the worker does, so the test's
// coordinator hashes the same design the worker serves.
func parseLEFDEF(t *testing.T, lefPath, defPath string) *db.Design {
	t.Helper()
	lf, err := os.Open(lefPath)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	lib, err := lef.Parse(lf)
	if err != nil {
		t.Fatal(err)
	}
	df, err := os.Open(defPath)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	d, err := def.Parse(df, lib.Tech, lib.Masters)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDistSmokeWorkerSIGTERM is the end-to-end worker smoke test: boot
// paoworker on the generated LEF/DEF pair, run a real coordinator against it,
// require the distributed result byte-identical to single-process, then
// deliver a real SIGTERM and require a clean exit.
func TestDistSmokeWorkerSIGTERM(t *testing.T) {
	lefPath, defPath := clitest.WriteLEFDEF(t, clitest.SmallSpec(), nil)
	ready := make(chan string, 1)
	var log bytes.Buffer
	opts := &options{
		lefPath: lefPath, defPath: defPath,
		listen: "127.0.0.1:0", k: 3,
		run: &cliutil.RunFlags{}, obs: &obs.Flags{},
		log:     &log,
		onReady: func(addr string) { ready <- addr },
	}
	runDone := make(chan error, 1)
	go func() { runDone <- run(opts) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runDone:
		t.Fatalf("worker exited before ready: %v\n%s", err, log.String())
	case <-time.After(30 * time.Second):
		t.Fatal("worker never became ready")
	}

	d := parseLEFDEF(t, lefPath, defPath)
	cfg := pao.DefaultConfig()
	cfg.K = 3
	single := pao.NewAnalyzer(d, cfg).Run()
	single.Stats = single.Stats.Counts()
	var want bytes.Buffer
	if err := pao.EncodeSnapshot(&want, d, cfg, single); err != nil {
		t.Fatal(err)
	}

	c := &dist.Coordinator{
		Design: d, Cfg: cfg, Workers: []string{addr},
		Obs: obs.NewObserver("smoke"),
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res.Stats = res.Stats.Counts()
	var got bytes.Buffer
	if err := pao.EncodeSnapshot(&got, d, cfg, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("distributed snapshot differs from single-process: %d vs %d bytes",
			got.Len(), want.Len())
	}
	if c.Obs.Reg().Snapshot().Counters["dist.shards.ok"] == 0 {
		t.Error("no shards went through the worker; the smoke test is vacuous")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("SIGTERM shutdown returned %v, want nil (exit 0)\n%s", err, log.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not exit after SIGTERM")
	}
}
