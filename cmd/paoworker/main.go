// Command paoworker serves pin-access analysis shards to a distributed
// paorun coordinator (paorun -distributed). It loads (or generates) the same
// design as the coordinator — the shared-volume model: both sides read the
// same inputs, only shard assignments and results cross the wire — and
// answers analyze/select shard requests until terminated.
//
// Endpoints (consumed by the coordinator, not meant for humans):
//
//	GET  /v1/ping     identity probe: design name, design hash, config
//	                  fingerprint — mismatched workers are excluded
//	POST /v1/analyze  run Step 1+2 for a set of unique-instance classes;
//	                  answers a partial result snapshot
//	POST /v1/select   run Step-3 selection for a set of row clusters
//
// The worker is stateless between shards: a worker killed mid-shard leaves
// nothing to clean up, and the coordinator relocates its shards to survivors.
// SIGTERM/SIGINT drain the listener and exit 0.
//
// Usage:
//
//	paoworker -case pao_test1 -scale 0.05 [-listen 127.0.0.1:8451]
//	paoworker -lef design.lef -def design.def [-listen :8451] [-k 3] [-nobca]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/db"
	"repro/internal/def"
	"repro/internal/dist"
	"repro/internal/lef"
	"repro/internal/obs"
	"repro/internal/pao"
	"repro/internal/suite"
	"repro/internal/telemetry"
)

// options holds the parsed command line; parseFlags keeps it testable with
// an injected FlagSet and argument list.
type options struct {
	caseName string
	scale    float64
	seed     int64

	lefPath, defPath string

	listen   string
	k        int
	noBCA    bool
	logLevel string

	run *cliutil.RunFlags
	obs *obs.Flags

	log io.Writer // operational log; nil means os.Stderr

	// onReady, when set (tests), is called with the bound listen address
	// after the worker starts accepting shards.
	onReady func(addr string)
}

func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.StringVar(&o.caseName, "case", "", "suite testcase to generate and serve (e.g. pao_test1)")
	fs.Float64Var(&o.scale, "scale", 0.05, "testcase scale factor for -case")
	fs.Int64Var(&o.seed, "seed", 0, "testcase seed override for -case (0 keeps the spec's seed)")
	fs.StringVar(&o.lefPath, "lef", "", "LEF file (alternative to -case)")
	fs.StringVar(&o.defPath, "def", "", "DEF file (alternative to -case)")
	fs.StringVar(&o.listen, "listen", "127.0.0.1:8451", "listen address (use :0 for an ephemeral port)")
	fs.IntVar(&o.k, "k", 3, "target access points per pin (must match the coordinator)")
	fs.BoolVar(&o.noBCA, "nobca", false, "disable boundary conflict awareness (must match the coordinator)")
	fs.StringVar(&o.logLevel, "log-level", "info", "structured log level: debug, info, warn, error")
	o.run = cliutil.RegisterRunFlags(fs)
	o.obs = obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	haveCase := o.caseName != ""
	haveFiles := o.lefPath != "" && o.defPath != ""
	if haveCase == haveFiles {
		return nil, fmt.Errorf("exactly one of -case or -lef/-def is required")
	}
	if _, err := telemetry.ParseLevel(o.logLevel); err != nil {
		return nil, err
	}
	return o, nil
}

func main() {
	opts, err := parseFlags(flag.NewFlagSet("paoworker", flag.ExitOnError), os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "paoworker:", err)
		os.Exit(2)
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "paoworker:", err)
		os.Exit(cliutil.ExitCode(err))
	}
}

func loadDesign(opts *options) (*db.Design, error) {
	if opts.caseName != "" {
		spec, err := suite.ByName(opts.caseName)
		if err != nil {
			return nil, err
		}
		spec = spec.Scale(opts.scale)
		if opts.seed != 0 {
			spec = spec.WithSeed(opts.seed)
		}
		return suite.Generate(spec)
	}
	lf, err := os.Open(opts.lefPath)
	if err != nil {
		return nil, err
	}
	defer lf.Close()
	lib, err := lef.Parse(lf)
	if err != nil {
		return nil, err
	}
	df, err := os.Open(opts.defPath)
	if err != nil {
		return nil, err
	}
	defer df.Close()
	return def.Parse(df, lib.Tech, lib.Masters)
}

func run(opts *options) error {
	ctx, stop := opts.run.Context()
	defer stop()
	logw := opts.log
	if logw == nil {
		logw = os.Stderr
	}
	lvl, err := telemetry.ParseLevel(opts.logLevel)
	if err != nil {
		return err
	}
	logger := telemetry.NewLogger(logw, "paoworker", lvl)
	o, finish, err := opts.obs.Start("paoworker")
	if err != nil {
		return err
	}

	d, err := loadDesign(opts)
	if err != nil {
		return err
	}
	cfg := pao.DefaultConfig()
	cfg.K = opts.k
	cfg.BCA = !opts.noBCA

	w := dist.NewWorker(d, cfg)
	w.Obs = o

	ln, err := net.Listen("tcp", opts.listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: w.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logger.Info("serving shards", append(telemetry.Build().Fields(),
		telemetry.F("design", d.Name),
		telemetry.F("design_hash", pao.DesignHash(d)),
		telemetry.F("config", pao.ConfigFingerprint(cfg)),
		telemetry.F("addr", ln.Addr().String()),
	)...)
	if opts.onReady != nil {
		opts.onReady(ln.Addr().String())
	}

	// Serve until SIGINT/SIGTERM (or -timeout), then drain on a fresh
	// context: the triggering signal already cancelled ctx. In-flight shards
	// that outlive the drain window are the coordinator's problem — it
	// relocates them, exactly as if this worker had died.
	var exitErr error
	select {
	case err := <-serveErr:
		exitErr = err // listener failed; not a clean shutdown
	case <-ctx.Done():
		logger.Info("shutdown requested, draining")
		sdCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		exitErr = srv.Shutdown(sdCtx)
	}
	if err := finish(); err != nil && exitErr == nil {
		exitErr = err
	}
	if exitErr != nil {
		return exitErr
	}
	logger.Info("clean shutdown")
	return nil
}
