// Command paogen generates a synthetic benchmark testcase and writes it as a
// LEF/DEF pair.
//
// Observability: -metrics=text|json emits spans for generation, file
// writing, global routing and the heatmap; -trace, -cpuprofile and
// -memprofile behave as in paorun.
//
// Usage:
//
//	paogen -case pao_test1 [-scale 0.1] [-out dir] [-metrics text|json]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cliutil"
	"repro/internal/def"
	"repro/internal/guide"
	"repro/internal/lef"
	"repro/internal/obs"
	"repro/internal/render"
	"repro/internal/suite"
	"repro/internal/telemetry"
)

// options holds the parsed command line; parseFlags keeps it testable with
// an injected FlagSet and argument list.
type options struct {
	name  string
	scale float64
	out   string
	run   *cliutil.RunFlags
	obs   *obs.Flags
	tel   *telemetry.Flags
}

func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.StringVar(&o.name, "case", "pao_test1", "testcase name (pao_test1..pao_test10, aes_14nm)")
	fs.Float64Var(&o.scale, "scale", 1.0, "scale factor")
	fs.StringVar(&o.out, "out", ".", "output directory")
	o.run = cliutil.RegisterRunFlags(fs)
	o.obs = obs.RegisterFlags(fs)
	o.tel = telemetry.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return o, nil
}

func main() {
	opts, err := parseFlags(flag.NewFlagSet("paogen", flag.ExitOnError), os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "paogen:", err)
		os.Exit(2)
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "paogen:", err)
		os.Exit(cliutil.ExitCode(err))
	}
}

func run(opts *options) error {
	ctx, stop := opts.run.Context()
	defer stop()
	spec, err := suite.ByName(opts.name)
	if err != nil {
		return err
	}
	o, finish, err := opts.obs.Start("paogen")
	if err != nil {
		return err
	}
	t0 := time.Now()
	o, tel, err := opts.tel.Activate("paogen", o, telemetry.Label{Name: "design", Value: spec.Name})
	if err != nil {
		return err
	}
	defer tel.Close()
	spGen := o.Root().Start("generate")
	d, err := suite.Generate(spec.Scale(opts.scale))
	if err != nil {
		return err
	}
	spGen.End()
	if err := os.MkdirAll(opts.out, 0o755); err != nil {
		return err
	}
	lefPath := filepath.Join(opts.out, d.Name+".lef")
	defPath := filepath.Join(opts.out, d.Name+".def")

	spWrite := o.Root().Start("write")
	lf, err := os.Create(lefPath)
	if err != nil {
		return err
	}
	defer lf.Close()
	if err := lef.Write(lf, d.Tech, d.Masters); err != nil {
		return err
	}
	df, err := os.Create(defPath)
	if err != nil {
		return err
	}
	defer df.Close()
	if err := def.Write(df, d); err != nil {
		return err
	}
	spWrite.End()
	if err := ctx.Err(); err != nil {
		finish()
		fmt.Printf("wrote %s and %s; cancelled before global routing\n", lefPath, defPath)
		return err
	}
	// Global-route and emit the contest-style guide file alongside.
	spGuide := o.Root().Start("globalroute")
	guidePath := filepath.Join(opts.out, d.Name+".guide")
	gr := guide.New(d, guide.Config{})
	guides := gr.Route()
	spGuide.End()
	gf, err := os.Create(guidePath)
	if err != nil {
		return err
	}
	defer gf.Close()
	if err := guide.Write(gf, guides, d.Tech); err != nil {
		return err
	}
	// Congestion heatmap of the global-routing solution.
	spHeat := o.Root().Start("heatmap")
	heatPath := filepath.Join(opts.out, d.Name+"_congestion.svg")
	hf, err := os.Create(heatPath)
	if err != nil {
		return err
	}
	defer hf.Close()
	_, _, gcell := gr.Dims()
	if err := render.CongestionHeatmap(hf, d.Die, gcell, gr.CellLoad,
		d.Name+" global-routing congestion"); err != nil {
		return err
	}
	spHeat.End()
	tel.RecordRun("gen", d.Name, telemetry.CorrIDFrom(ctx), t0, time.Since(t0), o.Root())
	over, maxOver := gr.CongestionReport()
	fmt.Printf("wrote %s (%d masters), %s (%d instances, %d nets), %s and %s (overflow edges: %d, max %d)\n",
		lefPath, len(d.Masters), defPath, len(d.Instances), len(d.Nets), guidePath, heatPath, over, maxOver)
	if err := finish(); err != nil {
		return err
	}
	if opts.run.FailFastSet() && over > 0 {
		return fmt.Errorf("global routing left %d overflow edges (-fail-fast)", over)
	}
	return nil
}
