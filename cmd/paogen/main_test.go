package main

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/def"
	"repro/internal/lef"
	"repro/internal/obs"
	"repro/internal/suite"
)

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("paogen", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestParseFlags(t *testing.T) {
	o, err := parseFlags(newFlagSet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.name != "pao_test1" || o.scale != 1.0 || o.out != "." {
		t.Errorf("defaults wrong: %+v", o)
	}
	o, err = parseFlags(newFlagSet(), []string{"-case", "aes_14nm", "-scale", "0.25", "-out", "/tmp/x"})
	if err != nil {
		t.Fatal(err)
	}
	if o.name != "aes_14nm" || o.scale != 0.25 || o.out != "/tmp/x" {
		t.Errorf("parsed values wrong: %+v", o)
	}
}

func TestRunUnknownCase(t *testing.T) {
	opts := &options{name: "nope", scale: 0.01, out: t.TempDir(), obs: &obs.Flags{}}
	if err := run(opts); err == nil {
		t.Fatal("unknown testcase must be an error")
	}
}

// TestRunWritesParseableOutputs: the generated LEF/DEF/guide triple plus the
// congestion SVG all land on disk, and the LEF/DEF pair parses back into a
// design of the expected size — the full generator round trip.
func TestRunWritesParseableOutputs(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	opts := &options{
		name: "pao_test1", scale: 0.01, out: dir,
		obs: &obs.Flags{TracePath: tracePath},
	}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	spec, err := suite.ByName("pao_test1")
	if err != nil {
		t.Fatal(err)
	}
	base := spec.Scale(0.01).Name // scaled testcases are renamed
	for _, name := range []string{base + ".lef", base + ".def", base + ".guide", base + "_congestion.svg"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing output: %v", err)
		}
	}

	lf, err := os.Open(filepath.Join(dir, base+".lef"))
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	lib, err := lef.Parse(lf)
	if err != nil {
		t.Fatalf("written LEF does not parse: %v", err)
	}
	df, err := os.Open(filepath.Join(dir, base+".def"))
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	d, err := def.Parse(df, lib.Tech, lib.Masters)
	if err != nil {
		t.Fatalf("written DEF does not parse: %v", err)
	}
	if len(d.Instances) == 0 || len(d.Nets) == 0 {
		t.Fatalf("round-tripped design empty: %d instances, %d nets", len(d.Instances), len(d.Nets))
	}

	svg, err := os.ReadFile(filepath.Join(dir, base+"_congestion.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Error("congestion heatmap is not an SVG document")
	}
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var span obs.SpanExport
	if err := json.Unmarshal(traceData, &span); err != nil {
		t.Fatalf("-trace output invalid: %v", err)
	}
	if span.Name != "paogen" {
		t.Errorf("trace root = %q", span.Name)
	}
}
