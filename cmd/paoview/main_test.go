package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/clitest"
	"repro/internal/lef"
	"repro/internal/obs"
)

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("paoview", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestParseFlags(t *testing.T) {
	if _, err := parseFlags(newFlagSet(), []string{"-lef", "a.lef", "-cell", "X"}); err == nil {
		t.Fatal("missing -out must be an error")
	}
	o, err := parseFlags(newFlagSet(), []string{"-lef", "a.lef", "-cell", "X", "-out", "x.svg"})
	if err != nil {
		t.Fatal(err)
	}
	if o.orientName != "N" {
		t.Errorf("default orient = %q", o.orientName)
	}
	o, err = parseFlags(newFlagSet(), []string{"-lef", "a.lef", "-cell", "X", "-out", "x.svg", "-orient", "FN"})
	if err != nil {
		t.Fatal(err)
	}
	if o.orientName != "FN" {
		t.Errorf("orient = %q", o.orientName)
	}
}

// firstSignalMaster parses the LEF and returns the name of some master with
// signal pins, so the test tracks whatever cell names the library generates.
func firstSignalMaster(t *testing.T, lefPath string) string {
	t.Helper()
	f, err := os.Open(lefPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lib, err := lef.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range lib.Masters {
		if len(m.SignalPins()) > 0 {
			return m.Name
		}
	}
	t.Fatal("no master with signal pins in the library")
	return ""
}

// TestRunRendersSVG analyzes one cell in a mirrored orientation and checks
// the rendered SVG plus the metrics report.
func TestRunRendersSVG(t *testing.T) {
	lefPath, _ := clitest.WriteLEFDEF(t, clitest.SmallSpec(), nil)
	cell := firstSignalMaster(t, lefPath)
	out := filepath.Join(t.TempDir(), "cell.svg")
	var buf bytes.Buffer
	opts := &options{
		lefPath: lefPath, cell: cell, out: out, orientName: "FN",
		obs: &obs.Flags{Metrics: "json", Out: &buf},
	}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	svg, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Error("output is not an SVG document")
	}
	var rep obs.Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("-metrics json output invalid: %v", err)
	}
	if rep.Name != "paoview" {
		t.Errorf("report name = %q", rep.Name)
	}
}

func TestRunBadInputs(t *testing.T) {
	lefPath, _ := clitest.WriteLEFDEF(t, clitest.SmallSpec(), nil)
	out := filepath.Join(t.TempDir(), "x.svg")
	opts := &options{lefPath: lefPath, cell: "NOSUCHCELL", out: out, orientName: "N", obs: &obs.Flags{}}
	if err := run(opts); err == nil || !strings.Contains(err.Error(), "NOSUCHCELL") {
		t.Fatalf("unknown cell: err = %v", err)
	}
	cell := firstSignalMaster(t, lefPath)
	opts = &options{lefPath: lefPath, cell: cell, out: out, orientName: "Q", obs: &obs.Flags{}}
	if err := run(opts); err == nil {
		t.Fatal("bad orientation must be an error")
	}
}
