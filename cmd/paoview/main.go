// Command paoview renders one cell master from a LEF library as SVG, with
// the access points the framework would generate for a track-aligned
// placement — the per-cell view used to inspect library pin access quality
// (the paper's Figs. 2 and 9 style).
//
// Observability: -metrics=text|json emits the analysis span tree and DRC
// counters for the one-cell run; -trace, -cpuprofile and -memprofile behave
// as in paorun.
//
// Usage:
//
//	paoview -lef lib.lef -cell NAND2X1 -out nand2.svg [-orient N] [-metrics text|json]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/lef"
	"repro/internal/obs"
	"repro/internal/pao"
	"repro/internal/render"
	"repro/internal/tech"
	"repro/internal/telemetry"
)

// options holds the parsed command line; parseFlags keeps it testable with
// an injected FlagSet and argument list.
type options struct {
	lefPath, cell, out, orientName string
	run                            *cliutil.RunFlags
	obs                            *obs.Flags
	tel                            *telemetry.Flags
}

func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.StringVar(&o.lefPath, "lef", "", "LEF file")
	fs.StringVar(&o.cell, "cell", "", "master name")
	fs.StringVar(&o.out, "out", "", "output SVG path")
	fs.StringVar(&o.orientName, "orient", "N", "placement orientation (N, S, FN, FS, ...)")
	o.run = cliutil.RegisterRunFlags(fs)
	o.obs = obs.RegisterFlags(fs)
	o.tel = telemetry.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.lefPath == "" || o.cell == "" || o.out == "" {
		return nil, fmt.Errorf("-lef, -cell and -out are required")
	}
	return o, nil
}

func main() {
	opts, err := parseFlags(flag.NewFlagSet("paoview", flag.ExitOnError), os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "paoview:", err)
		os.Exit(2)
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "paoview:", err)
		os.Exit(cliutil.ExitCode(err))
	}
}

func run(opts *options) error {
	ctx, stop := opts.run.Context()
	defer stop()
	lf, err := os.Open(opts.lefPath)
	if err != nil {
		return err
	}
	defer lf.Close()
	lib, err := lef.Parse(lf)
	if err != nil {
		return err
	}
	var master *db.Master
	for _, m := range lib.Masters {
		if m.Name == opts.cell {
			master = m
		}
	}
	if master == nil {
		return fmt.Errorf("master %q not in %s", opts.cell, opts.lefPath)
	}
	orient, err := geom.ParseOrient(opts.orientName)
	if err != nil {
		return err
	}

	// A one-cell design with track-aligned placement.
	d := db.NewDesign("paoview", lib.Tech)
	size := geom.Transform{Orient: orient, Size: master.Size}.PlacedSize()
	d.Die = geom.R(0, 0, size.X+4*lib.Tech.Metal(1).Pitch, size.Y+4*lib.Tech.Metal(1).Pitch)
	for _, l := range lib.Tech.Metals {
		extent := d.Die.XH
		if l.Dir == tech.Horizontal {
			extent = d.Die.YH
		}
		d.Tracks = append(d.Tracks, db.TrackPattern{
			Layer: l.Num, WireDir: l.Dir, Start: l.Pitch / 2,
			Num: int(extent / l.Pitch), Step: l.Pitch,
		})
	}
	if err := d.AddMaster(master); err != nil {
		return err
	}
	inst := &db.Instance{Name: "u", Master: master, Pos: geom.Pt(0, 0), Orient: orient}
	if err := d.AddInstance(inst); err != nil {
		return err
	}
	net := &db.Net{Name: "view"}
	for _, p := range master.SignalPins() {
		net.Terms = append(net.Terms, db.Term{Inst: inst, Pin: p})
	}
	d.Nets = []*db.Net{net}

	o, finish, err := opts.obs.Start("paoview")
	if err != nil {
		return err
	}
	t0 := time.Now()
	o, tel, err := opts.tel.Activate("paoview", o, telemetry.Label{Name: "cell", Value: opts.cell})
	if err != nil {
		return err
	}
	defer tel.Close()
	cfg := pao.DefaultConfig()
	cfg.FailFast = opts.run.FailFastSet()
	a := pao.NewAnalyzer(d, cfg)
	a.Obs = o
	res, runErr := a.RunContext(ctx)
	a.PublishObs()
	if runErr != nil {
		finish()
		return runErr
	}
	fmt.Printf("%s (%s): %d signal pins, %d access points, %d failed\n",
		opts.cell, orient, len(master.SignalPins()), res.Stats.TotalAPs, res.Stats.FailedPins)
	if !res.Health.OK() {
		fmt.Println(res.Health)
	}
	for _, p := range master.SignalPins() {
		ap := res.AccessPointFor(inst, p)
		if ap == nil {
			fmt.Printf("  %-6s FAILED\n", p.Name)
			continue
		}
		via := "planar"
		if v := ap.Primary(); v != nil {
			via = v.Name
		}
		fmt.Printf("  %-6s %v via %s\n", p.Name, ap, via)
	}

	c := render.NewCanvas(inst.BBox().Bloat(lib.Tech.Metal(1).Pitch))
	c.PixelsPerMicron = 400
	c.DrawDesign(d, 2)
	c.DrawAccess(d, res)
	f, err := os.Create(opts.out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.WriteSVG(f, fmt.Sprintf("%s (%s) pin access", opts.cell, orient)); err != nil {
		return err
	}
	tel.RecordRun("view", opts.cell, telemetry.CorrIDFrom(ctx), t0, time.Since(t0), o.Root())
	return finish()
}
