package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/obs"
)

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("paoexp", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestParseFlags(t *testing.T) {
	o, err := parseFlags(newFlagSet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.expName != "all" || o.scale != 0.05 || o.cases != "" {
		t.Errorf("defaults wrong: %+v", o)
	}
	o, err = parseFlags(newFlagSet(), []string{"-exp", "1", "-scale", "0.004", "-cases", "pao_test1", "-metrics", "text"})
	if err != nil {
		t.Fatal(err)
	}
	if o.expName != "1" || o.scale != 0.004 || o.cases != "pao_test1" || o.obs.Metrics != "text" {
		t.Errorf("parsed values wrong: %+v obs=%+v", o, o.obs)
	}
}

func TestSelectedSpecs(t *testing.T) {
	all, err := selectedSpecs("")
	if err != nil || len(all) != 10 {
		t.Fatalf("default selection: %d specs, err %v", len(all), err)
	}
	sub, err := selectedSpecs("pao_test1, pao_test5")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 || sub[0].Name != "pao_test1" || sub[1].Name != "pao_test5" {
		t.Fatalf("subset wrong: %+v", sub)
	}
	if _, err := selectedSpecs("pao_test1,nope"); err == nil {
		t.Fatal("unknown testcase must be an error")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	opts := &options{expName: "bogus", scale: 0.004, obs: &obs.Flags{}}
	err := run(opts)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

// TestRunExp1Tiny runs Experiment 1 on one tiny testcase and checks the
// metrics report carries the per-phase experiment spans.
func TestRunExp1Tiny(t *testing.T) {
	var buf bytes.Buffer
	opts := &options{
		expName: "1", scale: 0.004, cases: "pao_test1",
		obs: &obs.Flags{Metrics: "json", Out: &buf},
	}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("-metrics json output invalid: %v\n%s", err, buf.Bytes())
	}
	if rep.Name != "paoexp" {
		t.Errorf("report name = %q", rep.Name)
	}
	if rep.Trace == nil || len(rep.Trace.Children) == 0 {
		t.Fatal("experiment ran without emitting any spans")
	}
}

// TestRunCancelledFlushesPartialTables is the regression test for the
// partial-output contract: when the run context expires mid-experiment, the
// rows finished so far — including the partial row returned alongside the
// error — must still render, and the metrics report must still flush.
func TestRunCancelledFlushesPartialTables(t *testing.T) {
	var out, metrics bytes.Buffer
	opts := &options{
		expName: "1", scale: 0.004, cases: "pao_test1",
		run: &cliutil.RunFlags{Timeout: time.Nanosecond},
		obs: &obs.Flags{Metrics: "json", Out: &metrics},
		out: &out,
	}
	err := run(opts)
	if !cliutil.Cancelled(err) {
		t.Fatalf("err = %v, want a cancellation", err)
	}
	if cliutil.ExitCode(err) != 3 {
		t.Fatalf("exit code = %d, want 3", cliutil.ExitCode(err))
	}
	got := out.String()
	if !strings.Contains(got, "Table II") {
		t.Errorf("partial Experiment 1 table not flushed:\n%s", got)
	}
	if !strings.Contains(got, "pao_test1") {
		t.Errorf("partial row missing from the flushed table:\n%s", got)
	}
	var rep obs.Report
	if err := json.Unmarshal(metrics.Bytes(), &rep); err != nil {
		t.Fatalf("metrics report not flushed on cancellation: %v", err)
	}
}
