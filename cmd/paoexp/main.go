// Command paoexp reproduces the paper's experiments on the synthetic
// ISPD-2018-style suite and prints the corresponding tables.
//
// Observability: -metrics=text|json emits the experiment span tree (one span
// per table row phase — the row's reported seconds ARE these span durations)
// plus the aggregated DRC and worker counters; -trace, -cpuprofile and
// -memprofile behave as in paorun.
//
// Usage:
//
//	paoexp -exp table1|1|2|3|14nm|ablate|all [-scale 0.05] [-cases pao_test1,pao_test5]
//	       [-metrics text|json] [-trace out.json]
//
// Scale proportionally shrinks every testcase (1.0 runs the full Table I
// sizes; expect minutes of runtime and several GB of memory at full scale).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/suite"
	"repro/internal/telemetry"
)

// options holds the parsed command line; parseFlags keeps it testable with
// an injected FlagSet and argument list.
type options struct {
	expName string
	scale   float64
	cases   string
	run     *cliutil.RunFlags
	obs     *obs.Flags
	tel     *telemetry.Flags
	out     io.Writer // table destination; nil means os.Stdout
}

func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.StringVar(&o.expName, "exp", "all", "experiment: table1, 1, 2, 3, 14nm, ablate, all")
	fs.Float64Var(&o.scale, "scale", 0.05, "testcase scale factor (1.0 = full Table I sizes)")
	fs.StringVar(&o.cases, "cases", "", "comma-separated testcase subset (default: all)")
	o.run = cliutil.RegisterRunFlags(fs)
	o.obs = obs.RegisterFlags(fs)
	o.tel = telemetry.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return o, nil
}

func main() {
	opts, err := parseFlags(flag.NewFlagSet("paoexp", flag.ExitOnError), os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "paoexp:", err)
		os.Exit(2)
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "paoexp:", err)
		os.Exit(cliutil.ExitCode(err))
	}
}

func selectedSpecs(cases string) ([]suite.Spec, error) {
	if cases == "" {
		return suite.Testcases, nil
	}
	var out []suite.Spec
	for _, name := range strings.Split(cases, ",") {
		s, err := suite.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func run(opts *options) error {
	ctx, stop := opts.run.Context()
	defer stop()
	expName, scale := opts.expName, opts.scale
	out := opts.out
	if out == nil {
		out = os.Stdout
	}
	specs, err := selectedSpecs(opts.cases)
	if err != nil {
		return err
	}
	o, finish, err := opts.obs.Start("paoexp")
	if err != nil {
		return err
	}
	t0 := time.Now()
	o, tel, err := opts.tel.Activate("paoexp", o, telemetry.Label{Name: "exp", Value: expName})
	if err != nil {
		return err
	}
	defer tel.Close()
	// abort flushes the observability report before surfacing a cancellation
	// or experiment failure. Each experiment block below renders whatever rows
	// it finished — including the partial row the Run*Obs entry points return
	// alongside a ctx error — before calling this, so a SIGTERM or -timeout
	// mid-run still emits the partial tables instead of discarding them.
	abort := func(err error) error {
		finish()
		return err
	}
	all := expName == "all"
	if all || expName == "table1" {
		rows, err := exp.RunTable1(scale)
		if err != nil {
			return abort(err)
		}
		exp.RenderTable1(out, rows)
		fmt.Fprintln(out)
	}
	if all || expName == "1" {
		var rows []exp.Exp1Row
		var expErr error
		for _, s := range specs {
			r, err := exp.RunExp1Obs(ctx, o, s, scale)
			if r.Name != "" {
				rows = append(rows, r)
			}
			if err != nil {
				expErr = err
				break
			}
		}
		exp.RenderExp1(out, rows)
		fmt.Fprintln(out)
		if expErr != nil {
			return abort(expErr)
		}
	}
	if all || expName == "2" {
		var rows []exp.Exp2Row
		var expErr error
		for _, s := range specs {
			r, err := exp.RunExp2Obs(ctx, o, s, scale)
			if r.Name != "" {
				rows = append(rows, r)
			}
			if err != nil {
				expErr = err
				break
			}
		}
		exp.RenderExp2(out, rows)
		fmt.Fprintln(out)
		if expErr != nil {
			return abort(expErr)
		}
	}
	if all || expName == "3" {
		rows, err := exp.RunExp3Obs(ctx, o, minF(scale, 0.02))
		exp.RenderExp3(out, rows)
		fmt.Fprintln(out)
		if err != nil {
			return abort(err)
		}
	}
	if all || expName == "14nm" {
		r, err := exp.RunAES14Obs(ctx, o, scale)
		if err != nil {
			if r.Insts > 0 {
				exp.RenderAES14(out, r)
				fmt.Fprintln(out)
			}
			return abort(err)
		}
		exp.RenderAES14(out, r)
		fmt.Fprintln(out)
	}
	if all || expName == "ablate" {
		rows, err := exp.RunAblationsObs(ctx, o, suite.Testcases[0], scale)
		exp.RenderAblations(out, "pao_test1", rows)
		if err != nil {
			return abort(err)
		}
	}
	if !all {
		switch expName {
		case "table1", "1", "2", "3", "14nm", "ablate":
		default:
			return fmt.Errorf("unknown experiment %q", expName)
		}
	}
	tel.RecordRun("exp", expName, telemetry.CorrIDFrom(ctx), t0, time.Since(t0), o.Root())
	return finish()
}

// minF caps the routing experiment's scale: the track-graph router is a
// substrate, not a contest router, and full-size mazes are out of scope.
func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
