// Command paoroute routes a LEF/DEF design on the track-graph substrate
// router, using either PAAF or ad-hoc pin access, reports the post-route DRC
// summary, and optionally writes the routed DEF and a Fig. 8-style SVG of the
// densest violation window.
//
// Observability: -metrics=text|json emits spans for parse, access analysis,
// routing and the post-route check, plus the analyzer's DRC counters;
// -trace, -cpuprofile and -memprofile behave as in paorun.
//
// Usage:
//
//	paoroute -lef d.lef -def d.def [-access paaf|adhoc] [-out routed.def] [-svg win.svg]
//	         [-metrics text|json] [-trace out.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/def"
	"repro/internal/guide"
	"repro/internal/lef"
	"repro/internal/obs"
	"repro/internal/pao"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/router"
)

func main() {
	lefPath := flag.String("lef", "", "LEF file")
	defPath := flag.String("def", "", "DEF file")
	access := flag.String("access", "paaf", "pin access mode: paaf or adhoc")
	guidePath := flag.String("guide", "", "route-guide file (contest format; empty: unguided)")
	outPath := flag.String("out", "", "write the routed DEF here")
	svgPath := flag.String("svg", "", "write a violation-window SVG here")
	ofl := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *lefPath == "" || *defPath == "" {
		fmt.Fprintln(os.Stderr, "paoroute: -lef and -def are required")
		os.Exit(2)
	}
	if err := run(*lefPath, *defPath, *access, *guidePath, *outPath, *svgPath, ofl); err != nil {
		fmt.Fprintln(os.Stderr, "paoroute:", err)
		os.Exit(1)
	}
}

func run(lefPath, defPath, access, guidePath, outPath, svgPath string, ofl *obs.Flags) error {
	o, finish, err := ofl.Start("paoroute")
	if err != nil {
		return err
	}
	spParse := o.Root().Start("parse")
	lf, err := os.Open(lefPath)
	if err != nil {
		return err
	}
	defer lf.Close()
	lib, err := lef.Parse(lf)
	if err != nil {
		return err
	}
	df, err := os.Open(defPath)
	if err != nil {
		return err
	}
	defer df.Close()
	d, err := def.Parse(df, lib.Tech, lib.Masters)
	if err != nil {
		return err
	}
	spParse.End()

	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	a.Obs = o
	cfg := router.Config{}
	if guidePath != "" {
		gf, err := os.Open(guidePath)
		if err != nil {
			return err
		}
		guides, err := guide.Parse(gf, lib.Tech)
		gf.Close()
		if err != nil {
			return err
		}
		cfg.Guides = make(map[string][]guide.Box, len(guides))
		for _, g := range guides {
			cfg.Guides[g.Net] = g.Boxes
		}
	}
	switch access {
	case "paaf":
		cfg.Mode = router.AccessPAAF
		cfg.Access = a.Run()
	case "adhoc":
		cfg.Mode = router.AccessAdHoc
	default:
		return fmt.Errorf("unknown access mode %q", access)
	}
	r, err := router.New(d, cfg)
	if err != nil {
		return err
	}
	spRoute := o.Root().Start("route")
	res := r.Route()
	spRoute.End()
	spCheck := o.Root().Start("check")
	router.Check(a, res)
	spCheck.End()
	a.PublishObs()

	t := report.New(fmt.Sprintf("Routing summary for %s (%s access)", d.Name, access),
		"Routed", "Failed", "WL (um)", "#Vias", "#DRCs", "#Access DRCs")
	t.AddRow(res.Routed, res.Failed, res.WireLength/1000, len(res.Vias),
		len(res.Violations), res.AccessViolations)
	t.Render(os.Stdout)

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := def.WriteRouted(f, d, router.ExportRouting(d, res)); err != nil {
			return err
		}
		fmt.Println("routed DEF written to", outPath)
	}
	if svgPath != "" {
		win := render.ViolationWindow(d, res.Violations, 12000)
		c := render.NewCanvas(win)
		c.DrawDesign(d, 3)
		c.DrawRouting(res, 3)
		c.DrawViolations(res.Violations)
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := c.WriteSVG(f, d.Name+" ("+access+" access)"); err != nil {
			return err
		}
		fmt.Println("SVG written to", svgPath)
	}
	return finish()
}
