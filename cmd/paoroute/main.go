// Command paoroute routes a LEF/DEF design on the track-graph substrate
// router, using either PAAF or ad-hoc pin access, reports the post-route DRC
// summary, and optionally writes the routed DEF and a Fig. 8-style SVG of the
// densest violation window.
//
// Observability: -metrics=text|json emits spans for parse, access analysis,
// routing and the post-route check, plus the analyzer's DRC counters;
// -trace, -cpuprofile and -memprofile behave as in paorun.
//
// Usage:
//
//	paoroute -lef d.lef -def d.def [-access paaf|adhoc] [-out routed.def] [-svg win.svg]
//	         [-metrics text|json] [-trace out.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/def"
	"repro/internal/guide"
	"repro/internal/lef"
	"repro/internal/obs"
	"repro/internal/pao"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/router"
	"repro/internal/telemetry"
)

// options holds the parsed command line; parseFlags keeps it testable with
// an injected FlagSet and argument list.
type options struct {
	lefPath, defPath  string
	access, guidePath string
	outPath, svgPath  string
	run               *cliutil.RunFlags
	obs               *obs.Flags
	tel               *telemetry.Flags
}

func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.StringVar(&o.lefPath, "lef", "", "LEF file")
	fs.StringVar(&o.defPath, "def", "", "DEF file")
	fs.StringVar(&o.access, "access", "paaf", "pin access mode: paaf or adhoc")
	fs.StringVar(&o.guidePath, "guide", "", "route-guide file (contest format; empty: unguided)")
	fs.StringVar(&o.outPath, "out", "", "write the routed DEF here")
	fs.StringVar(&o.svgPath, "svg", "", "write a violation-window SVG here")
	o.run = cliutil.RegisterRunFlags(fs)
	o.obs = obs.RegisterFlags(fs)
	o.tel = telemetry.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.lefPath == "" || o.defPath == "" {
		return nil, fmt.Errorf("-lef and -def are required")
	}
	return o, nil
}

func main() {
	opts, err := parseFlags(flag.NewFlagSet("paoroute", flag.ExitOnError), os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "paoroute:", err)
		os.Exit(2)
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "paoroute:", err)
		os.Exit(cliutil.ExitCode(err))
	}
}

func run(opts *options) error {
	ctx, stop := opts.run.Context()
	defer stop()
	o, finish, err := opts.obs.Start("paoroute")
	if err != nil {
		return err
	}
	spParse := o.Root().Start("parse")
	lf, err := os.Open(opts.lefPath)
	if err != nil {
		return err
	}
	defer lf.Close()
	lib, err := lef.Parse(lf)
	if err != nil {
		return err
	}
	df, err := os.Open(opts.defPath)
	if err != nil {
		return err
	}
	defer df.Close()
	d, err := def.Parse(df, lib.Tech, lib.Masters)
	if err != nil {
		return err
	}
	spParse.End()

	t0 := time.Now()
	o, tel, err := opts.tel.Activate("paoroute", o, telemetry.Label{Name: "design", Value: d.Name})
	if err != nil {
		return err
	}
	defer tel.Close()

	pcfg := pao.DefaultConfig()
	pcfg.FailFast = opts.run.FailFastSet()
	a := pao.NewAnalyzer(d, pcfg)
	a.Obs = o
	cfg := router.Config{}
	if opts.guidePath != "" {
		gf, err := os.Open(opts.guidePath)
		if err != nil {
			return err
		}
		guides, err := guide.Parse(gf, lib.Tech)
		gf.Close()
		if err != nil {
			return err
		}
		cfg.Guides = make(map[string][]guide.Box, len(guides))
		for _, g := range guides {
			cfg.Guides[g.Net] = g.Boxes
		}
	}
	switch opts.access {
	case "paaf":
		cfg.Mode = router.AccessPAAF
		access, err := a.RunContext(ctx)
		if access != nil && !access.Health.OK() {
			fmt.Println("access analysis", access.Health)
		}
		if err != nil {
			finish()
			return fmt.Errorf("access analysis: %w", err)
		}
		cfg.Access = access
	case "adhoc":
		cfg.Mode = router.AccessAdHoc
	default:
		return fmt.Errorf("unknown access mode %q", opts.access)
	}
	if err := ctx.Err(); err != nil {
		finish()
		return err
	}
	r, err := router.New(d, cfg)
	if err != nil {
		return err
	}
	spRoute := o.Root().Start("route")
	res := r.Route()
	spRoute.End()
	if err := ctx.Err(); err != nil {
		finish()
		return err
	}
	spCheck := o.Root().Start("check")
	router.Check(a, res)
	spCheck.End()
	a.PublishObs()

	t := report.New(fmt.Sprintf("Routing summary for %s (%s access)", d.Name, opts.access),
		"Routed", "Failed", "WL (um)", "#Vias", "#DRCs", "#Access DRCs")
	t.AddRow(res.Routed, res.Failed, res.WireLength/1000, len(res.Vias),
		len(res.Violations), res.AccessViolations)
	t.Render(os.Stdout)

	if opts.outPath != "" {
		f, err := os.Create(opts.outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := def.WriteRouted(f, d, router.ExportRouting(d, res)); err != nil {
			return err
		}
		fmt.Println("routed DEF written to", opts.outPath)
	}
	if opts.svgPath != "" {
		win := render.ViolationWindow(d, res.Violations, 12000)
		c := render.NewCanvas(win)
		c.DrawDesign(d, 3)
		c.DrawRouting(res, 3)
		c.DrawViolations(res.Violations)
		f, err := os.Create(opts.svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := c.WriteSVG(f, d.Name+" ("+opts.access+" access)"); err != nil {
			return err
		}
		fmt.Println("SVG written to", opts.svgPath)
	}
	tel.RecordRun("route", d.Name+" ("+opts.access+")", telemetry.CorrIDFrom(ctx), t0, time.Since(t0), o.Root())
	return finish()
}
