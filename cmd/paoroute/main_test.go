package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/clitest"
	"repro/internal/obs"
)

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("paoroute", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestParseFlags(t *testing.T) {
	if _, err := parseFlags(newFlagSet(), nil); err == nil {
		t.Fatal("missing -lef/-def must be an error")
	}
	o, err := parseFlags(newFlagSet(), []string{"-lef", "a.lef", "-def", "a.def"})
	if err != nil {
		t.Fatal(err)
	}
	if o.access != "paaf" || o.outPath != "" || o.svgPath != "" {
		t.Errorf("defaults wrong: %+v", o)
	}
	o, err = parseFlags(newFlagSet(), []string{
		"-lef", "a.lef", "-def", "a.def", "-access", "adhoc",
		"-out", "r.def", "-svg", "w.svg", "-metrics", "json"})
	if err != nil {
		t.Fatal(err)
	}
	if o.access != "adhoc" || o.outPath != "r.def" || o.svgPath != "w.svg" || o.obs.Metrics != "json" {
		t.Errorf("parsed values wrong: %+v obs=%+v", o, o.obs)
	}
}

func TestRunUnknownAccessMode(t *testing.T) {
	lefPath, defPath := clitest.WriteLEFDEF(t, clitest.SmallSpec(), nil)
	opts := &options{lefPath: lefPath, defPath: defPath, access: "bogus", obs: &obs.Flags{}}
	err := run(opts)
	if err == nil || !strings.Contains(err.Error(), "unknown access mode") {
		t.Fatalf("err = %v", err)
	}
}

// TestRunPAAFWritesOutputs routes the tiny testcase with PAAF access and
// checks the routed DEF, the violation-window SVG and the metrics report.
func TestRunPAAFWritesOutputs(t *testing.T) {
	lefPath, defPath := clitest.WriteLEFDEF(t, clitest.SmallSpec(), nil)
	dir := t.TempDir()
	outPath := filepath.Join(dir, "routed.def")
	svgPath := filepath.Join(dir, "window.svg")
	var buf bytes.Buffer
	opts := &options{
		lefPath: lefPath, defPath: defPath, access: "paaf",
		outPath: outPath, svgPath: svgPath,
		obs: &obs.Flags{Metrics: "json", Out: &buf},
	}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	routed, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(routed), "DESIGN") {
		t.Error("routed output is not a DEF file")
	}
	svg, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Error("violation window is not an SVG document")
	}
	var rep obs.Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("-metrics json output invalid: %v", err)
	}
	if rep.Name != "paoroute" {
		t.Errorf("report name = %q", rep.Name)
	}
	if rep.Trace == nil || len(rep.Trace.Children) == 0 {
		t.Fatal("route run emitted no spans")
	}
}

// TestRunAdhocAccess exercises the contrast mode: routing must still complete
// without PAAF's precomputed access.
func TestRunAdhocAccess(t *testing.T) {
	lefPath, defPath := clitest.WriteLEFDEF(t, clitest.SmallSpec(), nil)
	opts := &options{lefPath: lefPath, defPath: defPath, access: "adhoc", obs: &obs.Flags{}}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
}
