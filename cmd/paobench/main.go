// Command paobench measures the PAAF pipeline's hot paths with the
// memoization layers on and off and emits a machine-readable report
// (BENCH_PR10.json). With -compare it re-runs the scenarios and gates the
// result against a checked-in baseline, failing on >tolerance regressions in
// the machine-independent metrics (allocs/op, cache hit rates, the
// cached-vs-uncached speedup); add -gate-ns to also gate absolute wall-clock
// time on a quiet dedicated host.
//
// Usage:
//
//	paobench -out BENCH_PR10.json             # refresh the artifact
//	paobench -compare BENCH_PR10.json         # CI regression gate
//	paobench -cold                            # uncached variants only
//	paobench -eco-out BENCH_PR7.json          # ECO re-analysis scoping report
//
// -eco-out runs the eco_reanalysis scenario instead of the standard set: a
// single-instance ECO against a resident session versus a fresh full run,
// plus the dirty-class/cluster counts and the scoped-vs-wholesale cache
// eviction fractions.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	scale := flag.Float64("scale", 0.01, "suite scale factor (must match the baseline's when comparing)")
	out := flag.String("out", "", "write the report JSON to this file (default stdout)")
	compare := flag.String("compare", "", "baseline report to gate the fresh run against")
	tol := flag.Float64("tolerance", 0.15, "relative regression tolerance for -compare")
	gateNs := flag.Bool("gate-ns", false, "also gate wall-clock ns/op (off by default: CI hosts vary)")
	ecoOut := flag.String("eco-out", "", "run the eco_reanalysis scenario only and write its report to this file")
	cold := flag.Bool("cold", false, "measure only the uncached (cold-path) variants; incompatible with -compare")
	quiet := flag.Bool("q", false, "suppress per-scenario progress lines")
	tf := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	progress := func(line string) { fmt.Fprintln(os.Stderr, line) }
	if *quiet {
		progress = nil
	}

	t0 := time.Now()
	_, tel, err := tf.Activate("paobench", nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paobench:", err)
		return 1
	}
	defer tel.Close()
	defer func() {
		tel.RecordRun("bench", fmt.Sprintf("scale %g", *scale), telemetry.NewCorrID(),
			t0, time.Since(t0), nil)
	}()

	if *ecoOut != "" {
		rep, err := bench.MeasureECO(*scale, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paobench:", err)
			return 1
		}
		f, err := os.Create(*ecoOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paobench:", err)
			return 1
		}
		defer f.Close()
		if err := rep.Write(f); err != nil {
			fmt.Fprintln(os.Stderr, "paobench:", err)
			return 1
		}
		return 0
	}

	if *cold && *compare != "" {
		fmt.Fprintln(os.Stderr, "paobench: -cold reports have no cached metrics and cannot be gated; drop -compare")
		return 1
	}

	var base bench.Report
	if *compare != "" {
		var err error
		if base, err = bench.Load(*compare); err != nil {
			fmt.Fprintln(os.Stderr, "paobench:", err)
			return 1
		}
		// A comparison at a different scale would be refused after minutes of
		// measurement; fail before running anything.
		if base.Scale != *scale {
			fmt.Fprintf(os.Stderr, "paobench: baseline %s was recorded at scale %g, this run uses %g; pass -scale %g\n",
				*compare, base.Scale, *scale, base.Scale)
			return 1
		}
	}

	measure := bench.Measure
	if *cold {
		measure = bench.MeasureCold
	}
	rep, err := measure(*scale, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paobench:", err)
		return 1
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paobench:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := rep.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "paobench:", err)
		return 1
	}

	if *compare != "" {
		if v := bench.Compare(base, rep, *tol, *gateNs); len(v) > 0 {
			fmt.Fprintf(os.Stderr, "paobench: %d regression(s) vs %s:\n", len(v), *compare)
			for _, msg := range v {
				fmt.Fprintln(os.Stderr, "  -", msg)
			}
			return 1
		}
		fmt.Fprintf(os.Stderr, "paobench: within %.0f%% of %s\n", *tol*100, *compare)
	}
	return 0
}
