package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/clitest"
	"repro/internal/cliutil"
	"repro/internal/db"
	"repro/internal/def"
	"repro/internal/dist"
	"repro/internal/lef"
	"repro/internal/obs"
	"repro/internal/pao"
)

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("paorun", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestParseFlags(t *testing.T) {
	if _, err := parseFlags(newFlagSet(), nil); err == nil {
		t.Fatal("missing -lef/-def must be an error")
	}
	if _, err := parseFlags(newFlagSet(), []string{"-lef", "a.lef"}); err == nil {
		t.Fatal("missing -def must be an error")
	}
	if _, err := parseFlags(newFlagSet(), []string{"-bogus"}); err == nil {
		t.Fatal("unknown flag must be an error")
	}
	if _, err := parseFlags(newFlagSet(), []string{"-lef", "a.lef", "-def", "a.def", "-distributed"}); err == nil {
		t.Fatal("-distributed without -workers-addr must be an error")
	}
	if _, err := parseFlags(newFlagSet(), []string{"-lef", "a.lef", "-def", "a.def", "-workers-addr", "h:1"}); err == nil {
		t.Fatal("-workers-addr without -distributed must be an error")
	}
	o, err := parseFlags(newFlagSet(), []string{"-lef", "a.lef", "-def", "a.def"})
	if err != nil {
		t.Fatal(err)
	}
	if o.k != 3 || o.workers != 1 || o.dump || o.noBCA || o.obs.Metrics != "off" {
		t.Errorf("defaults wrong: %+v obs=%+v", o, o.obs)
	}
	o, err = parseFlags(newFlagSet(), []string{
		"-lef", "a.lef", "-def", "a.def", "-k", "5", "-workers", "4",
		"-dump", "-nobca", "-metrics", "json", "-trace", "t.json"})
	if err != nil {
		t.Fatal(err)
	}
	if o.k != 5 || o.workers != 4 || !o.dump || !o.noBCA ||
		o.obs.Metrics != "json" || o.obs.TracePath != "t.json" {
		t.Errorf("parsed values wrong: %+v obs=%+v", o, o.obs)
	}
}

// TestRunMetricsAndTrace is the end-to-end smoke test: parse the generated
// LEF/DEF pair, run the analysis, and round-trip the -metrics json report and
// the -trace file through the obs types.
func TestRunMetricsAndTrace(t *testing.T) {
	lefPath, defPath := clitest.WriteLEFDEF(t, clitest.SmallSpec(), nil)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	opts := &options{
		lefPath: lefPath, defPath: defPath, dump: true, k: 3, workers: 2,
		obs: &obs.Flags{Metrics: "json", TracePath: tracePath, Out: &buf},
	}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}

	var rep obs.Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("-metrics json output is not a Report: %v\n%s", err, buf.Bytes())
	}
	if rep.Name != "paorun" {
		t.Errorf("report name = %q", rep.Name)
	}
	if len(rep.Counters) == 0 {
		t.Error("report has no counters; PublishObs not wired")
	}
	// The memoization layers must surface their traffic in -metrics: the
	// via-verdict cache counters flow through drc.Counters.Snapshot and the
	// pair-cache counters are published directly by PublishObs.
	for _, name := range []string{"drc.viacache.hit", "drc.viacache.miss", "pao.paircache.hit", "pao.paircache.miss"} {
		if _, ok := rep.Counters[name]; !ok {
			t.Errorf("report missing cache counter %q", name)
		}
	}
	if rep.Trace == nil || len(rep.Trace.Children) == 0 {
		t.Fatalf("report has no span tree: %+v", rep.Trace)
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var span obs.SpanExport
	if err := json.Unmarshal(data, &span); err != nil {
		t.Fatalf("-trace output is not a span tree: %v", err)
	}
	if span.Name != "paorun" || len(span.Children) == 0 {
		t.Errorf("trace root = %q with %d children", span.Name, len(span.Children))
	}
}

// TestDistSmokeRunMatchesLocal runs paorun end to end twice over the same
// LEF/DEF pair — once single-process, once -distributed against two in-process
// shard workers — and requires identical reports plus evidence in -metrics
// that shards actually crossed the wire.
func TestDistSmokeRunMatchesLocal(t *testing.T) {
	lefPath, defPath := clitest.WriteLEFDEF(t, clitest.SmallSpec(), nil)

	var local bytes.Buffer
	if err := run(&options{
		lefPath: lefPath, defPath: defPath, k: 3, workers: 2,
		obs: &obs.Flags{}, out: &local,
	}); err != nil {
		t.Fatal(err)
	}

	// Shard workers load the design from the same files, like paoworker does.
	servers := make([]string, 2)
	for i := range servers {
		wopts := &options{lefPath: lefPath, defPath: defPath}
		d, err := loadWorkerDesign(wopts)
		if err != nil {
			t.Fatal(err)
		}
		cfg := pao.DefaultConfig()
		cfg.K = 3
		srv := httptest.NewServer(dist.NewWorker(d, cfg).Handler())
		t.Cleanup(srv.Close)
		servers[i] = srv.URL
	}

	var out, metrics bytes.Buffer
	if err := run(&options{
		lefPath: lefPath, defPath: defPath, k: 3, workers: 2,
		distributed: true, workersAddr: strings.Join(servers, ","),
		obs: &obs.Flags{Metrics: "json", Out: &metrics},
		out: &out,
	}); err != nil {
		t.Fatal(err)
	}
	if out.String() != local.String() {
		t.Errorf("distributed report differs from single-process:\n%s\nvs\n%s",
			out.String(), local.String())
	}
	var rep obs.Report
	if err := json.Unmarshal(metrics.Bytes(), &rep); err != nil {
		t.Fatalf("-metrics json output is not a Report: %v\n%s", err, metrics.Bytes())
	}
	if rep.Counters["dist.shards.ok"] == 0 {
		t.Error("distributed run dispatched no shards; the smoke test is vacuous")
	}
	if rep.Counters["dist.shards.local"] != 0 {
		t.Errorf("healthy workers must serve every shard, got %d local", rep.Counters["dist.shards.local"])
	}
}

// loadWorkerDesign mirrors cmd/paoworker's design loading for the in-process
// shard workers of the smoke test.
func loadWorkerDesign(opts *options) (*db.Design, error) {
	lf, err := os.Open(opts.lefPath)
	if err != nil {
		return nil, err
	}
	defer lf.Close()
	lib, err := lef.Parse(lf)
	if err != nil {
		return nil, err
	}
	df, err := os.Open(opts.defPath)
	if err != nil {
		return nil, err
	}
	defer df.Close()
	return def.Parse(df, lib.Tech, lib.Masters)
}

func TestRunBadPath(t *testing.T) {
	opts := &options{lefPath: "/nonexistent.lef", defPath: "/nonexistent.def", obs: &obs.Flags{}}
	if err := run(opts); err == nil {
		t.Fatal("missing input files must be an error")
	}
}

// TestRunCancelledFlushesPartialSummary is the regression test for the
// graceful-degradation contract: a deadline (the same ctx path a SIGTERM
// takes through cliutil.RunFlags.Context) that fires mid-run must still emit
// the summary table with the Health line, return the cancellation error, and
// flush the metrics report.
func TestRunCancelledFlushesPartialSummary(t *testing.T) {
	lefPath, defPath := clitest.WriteLEFDEF(t, clitest.SmallSpec(), nil)
	var out, metrics bytes.Buffer
	opts := &options{
		lefPath: lefPath, defPath: defPath, k: 3, workers: 1,
		run: &cliutil.RunFlags{Timeout: time.Nanosecond},
		obs: &obs.Flags{Metrics: "json", Out: &metrics},
		out: &out,
	}
	err := run(opts)
	if !cliutil.Cancelled(err) {
		t.Fatalf("err = %v, want a cancellation", err)
	}
	if cliutil.ExitCode(err) != 3 {
		t.Fatalf("exit code = %d, want 3", cliutil.ExitCode(err))
	}
	got := out.String()
	if !strings.Contains(got, "Pin access summary") {
		t.Errorf("partial summary table not flushed:\n%s", got)
	}
	if !strings.Contains(got, "cancelled") {
		t.Errorf("Health summary missing the cancelled marker:\n%s", got)
	}
	var rep obs.Report
	if err := json.Unmarshal(metrics.Bytes(), &rep); err != nil {
		t.Fatalf("metrics report not flushed on cancellation: %v", err)
	}
}
