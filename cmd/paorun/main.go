// Command paorun runs the pin access analysis framework on a LEF/DEF pair
// and reports the results: per-unique-instance access points and patterns,
// plus the failed-pin summary. With -dump it lists every selected access
// point.
//
// Usage:
//
//	paorun -lef design.lef -def design.def [-dump] [-nobca] [-k 3]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/def"
	"repro/internal/lef"
	"repro/internal/pao"
	"repro/internal/report"
)

func main() {
	lefPath := flag.String("lef", "", "LEF file")
	defPath := flag.String("def", "", "DEF file")
	dump := flag.Bool("dump", false, "list every selected access point")
	noBCA := flag.Bool("nobca", false, "disable boundary conflict awareness")
	k := flag.Int("k", 3, "target access points per pin")
	flag.Parse()

	if *lefPath == "" || *defPath == "" {
		fmt.Fprintln(os.Stderr, "paorun: -lef and -def are required")
		os.Exit(2)
	}
	if err := run(*lefPath, *defPath, *dump, *noBCA, *k); err != nil {
		fmt.Fprintln(os.Stderr, "paorun:", err)
		os.Exit(1)
	}
}

func run(lefPath, defPath string, dump, noBCA bool, k int) error {
	lf, err := os.Open(lefPath)
	if err != nil {
		return err
	}
	defer lf.Close()
	lib, err := lef.Parse(lf)
	if err != nil {
		return err
	}
	df, err := os.Open(defPath)
	if err != nil {
		return err
	}
	defer df.Close()
	d, err := def.Parse(df, lib.Tech, lib.Masters)
	if err != nil {
		return err
	}

	cfg := pao.DefaultConfig()
	cfg.K = k
	cfg.BCA = !noBCA
	res := pao.NewAnalyzer(d, cfg).Run()

	t := report.New(fmt.Sprintf("Pin access summary for %s", d.Name),
		"#Inst", "#Unique", "#APs", "#OffTrack", "#Patterns", "#Pins", "#Failed")
	t.AddRow(len(d.Instances), res.Stats.NumUnique, res.Stats.TotalAPs,
		res.Stats.OffTrackAPs, res.Stats.PatternsBuilt, res.Stats.TotalPins, res.Stats.FailedPins)
	t.Render(os.Stdout)

	if dump {
		for _, net := range d.Nets {
			for _, term := range net.Terms {
				ap := res.AccessPointFor(term.Inst, term.Pin)
				if ap == nil {
					fmt.Printf("%-20s %-6s FAILED\n", term.Inst.Name, term.Pin.Name)
					continue
				}
				via := "-"
				if v := ap.Primary(); v != nil {
					via = v.Name
				}
				fmt.Printf("%-20s %-6s M%d (%d,%d) x:%v y:%v via %s\n",
					term.Inst.Name, term.Pin.Name, ap.Layer, ap.Pos.X, ap.Pos.Y, ap.TypeX, ap.TypeY, via)
			}
		}
	}
	return nil
}
