// Command paorun runs the pin access analysis framework on a LEF/DEF pair
// and reports the results: per-unique-instance access points and patterns,
// plus the failed-pin summary. With -dump it lists every selected access
// point; -v prints the per-step durations.
//
// Observability: -metrics=text|json emits the run's counters, worker
// telemetry and span timing tree; -trace writes the span tree as JSON to a
// file; -cpuprofile/-memprofile write runtime/pprof profiles.
//
// With -distributed the analysis shards out across paoworker processes
// (consistent-hash placement, retry/hedge/relocate on worker loss) and the
// result is byte-identical to the single-process run.
//
// Usage:
//
//	paorun -lef design.lef -def design.def [-dump] [-nobca] [-k 3] [-workers 4]
//	       [-v] [-metrics text|json] [-trace out.json] [-cpuprofile cpu.pb.gz]
//	paorun -lef design.lef -def design.def -distributed \
//	       -workers-addr 127.0.0.1:8451,127.0.0.1:8452
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/def"
	"repro/internal/dist"
	"repro/internal/lef"
	"repro/internal/obs"
	"repro/internal/pao"
	"repro/internal/report"
	"repro/internal/telemetry"
)

// splitAddrs parses the -workers-addr list, tolerating spaces and trailing
// commas.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// options holds the parsed command line; parseFlags keeps it testable with
// an injected FlagSet and argument list.
type options struct {
	lefPath, defPath     string
	dump, verbose, noBCA bool
	k, workers           int
	distributed          bool
	workersAddr          string
	run                  *cliutil.RunFlags
	obs                  *obs.Flags
	tel                  *telemetry.Flags
	out                  io.Writer // report destination; nil means os.Stdout
}

func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.StringVar(&o.lefPath, "lef", "", "LEF file")
	fs.StringVar(&o.defPath, "def", "", "DEF file")
	fs.BoolVar(&o.dump, "dump", false, "list every selected access point")
	fs.BoolVar(&o.verbose, "v", false, "print per-step durations")
	fs.BoolVar(&o.noBCA, "nobca", false, "disable boundary conflict awareness")
	fs.IntVar(&o.k, "k", 3, "target access points per pin")
	fs.IntVar(&o.workers, "workers", 1, "analysis worker goroutines")
	fs.BoolVar(&o.distributed, "distributed", false, "shard the analysis across paoworker processes")
	fs.StringVar(&o.workersAddr, "workers-addr", "", "comma-separated paoworker addresses for -distributed")
	o.run = cliutil.RegisterRunFlags(fs)
	o.obs = obs.RegisterFlags(fs)
	o.tel = telemetry.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.lefPath == "" || o.defPath == "" {
		return nil, fmt.Errorf("-lef and -def are required")
	}
	if o.distributed && o.workersAddr == "" {
		return nil, fmt.Errorf("-distributed requires -workers-addr")
	}
	if !o.distributed && o.workersAddr != "" {
		return nil, fmt.Errorf("-workers-addr requires -distributed")
	}
	return o, nil
}

func main() {
	opts, err := parseFlags(flag.NewFlagSet("paorun", flag.ExitOnError), os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "paorun:", err)
		os.Exit(2)
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "paorun:", err)
		os.Exit(cliutil.ExitCode(err))
	}
}

func run(opts *options) error {
	ctx, stop := opts.run.Context()
	defer stop()
	out := opts.out
	if out == nil {
		out = os.Stdout
	}
	o, finish, err := opts.obs.Start("paorun")
	if err != nil {
		return err
	}

	spParse := o.Root().Start("parse")
	lf, err := os.Open(opts.lefPath)
	if err != nil {
		return err
	}
	defer lf.Close()
	lib, err := lef.Parse(lf)
	if err != nil {
		return err
	}
	df, err := os.Open(opts.defPath)
	if err != nil {
		return err
	}
	defer df.Close()
	d, err := def.Parse(df, lib.Tech, lib.Masters)
	if err != nil {
		return err
	}
	spParse.End()

	t0 := time.Now()
	o, tel, err := opts.tel.Activate("paorun", o, telemetry.Label{Name: "design", Value: d.Name})
	if err != nil {
		return err
	}
	defer tel.Close()

	cfg := pao.DefaultConfig()
	cfg.K = opts.k
	cfg.BCA = !opts.noBCA
	cfg.Workers = opts.workers
	cfg.FailFast = opts.run.FailFastSet()
	var (
		res    *pao.Result
		runErr error
	)
	if opts.distributed {
		// Shard the run across paoworker processes. The coordinator degrades
		// gracefully — unreachable or lost workers relocate shards and, with
		// nobody left, it computes shards locally — so a distributed run never
		// fails harder than a local one.
		c := &dist.Coordinator{
			Design:  d,
			Cfg:     cfg,
			Workers: splitAddrs(opts.workersAddr),
			Obs:     o,
		}
		res, runErr = c.Run(ctx)
	} else {
		a := pao.NewAnalyzer(d, cfg)
		a.Obs = o
		tel.SetExtra(a.LiveCounters) // mid-run -metrics-listen scrapes see progress
		res, runErr = a.RunContext(ctx)
		a.PublishObs()
		tel.SetExtra(nil) // totals now live in the registry; don't double-count
	}

	t := report.New(fmt.Sprintf("Pin access summary for %s", d.Name),
		"#Inst", "#Unique", "#APs", "#OffTrack", "#Patterns", "#Pins", "#Failed")
	t.AddRow(len(d.Instances), res.Stats.NumUnique, res.Stats.TotalAPs,
		res.Stats.OffTrackAPs, res.Stats.PatternsBuilt, res.Stats.TotalPins, res.Stats.FailedPins)
	t.Render(out)
	if !res.Health.OK() {
		fmt.Fprintln(out, res.Health)
		for _, e := range res.Health.Errors() {
			fmt.Fprintln(out, " ", e)
		}
	}

	if opts.verbose {
		st := res.Stats.Steps
		fmt.Fprintln(out, "per-step durations:")
		fmt.Fprintf(out, "  step1 (AP generation):  %12v\n", st.Step1)
		fmt.Fprintf(out, "  step2 (patterns):       %12v\n", st.Step2)
		fmt.Fprintf(out, "  step1+2 wall:           %12v\n", st.Step12Wall)
		fmt.Fprintf(out, "  step3 (selection):      %12v\n", st.Step3)
		fmt.Fprintf(out, "  failed-pin check:       %12v\n", st.FailedPins)
		fmt.Fprintf(out, "  total:                  %12v\n", st.Total)
	}

	if opts.dump {
		for _, net := range d.Nets {
			for _, term := range net.Terms {
				ap := res.AccessPointFor(term.Inst, term.Pin)
				if ap == nil {
					fmt.Fprintf(out, "%-20s %-6s FAILED\n", term.Inst.Name, term.Pin.Name)
					continue
				}
				via := "-"
				if v := ap.Primary(); v != nil {
					via = v.Name
				}
				fmt.Fprintf(out, "%-20s %-6s M%d (%d,%d) x:%v y:%v via %s\n",
					term.Inst.Name, term.Pin.Name, ap.Layer, ap.Pos.X, ap.Pos.Y, ap.TypeX, ap.TypeY, via)
			}
		}
	}
	tel.RecordRun("run", d.Name, telemetry.CorrIDFrom(ctx), t0, time.Since(t0), o.Root())
	// Flush the observability report before surfacing a cancellation or
	// fail-fast abort: the partial summary above is the graceful-degradation
	// contract.
	if err := finish(); err != nil {
		return err
	}
	return runErr
}
