// Command paoserve runs the pin access oracle as a resident HTTP/JSON
// server: load (or generate) a design, run — or warm-restart from a snapshot
// — the PAAF analysis once, then answer per-instance access-pattern queries
// until terminated.
//
// Endpoints:
//
//	GET  /v1/access?inst=NAME  access pattern for one instance (200; degraded
//	                           classes answer with "degraded": true, never 500;
//	                           404 unknown instance; 429/503 when shedding)
//	GET  /v1/stats             analysis stats and health summary
//	POST /v1/reanalyze         start one background re-analysis (202; 503 when
//	                           the circuit breaker is open or one is running)
//	GET  /v1/access/explain    decision audit for one pin (?inst=NAME&pin=NAME):
//	                           per-candidate DRC verdicts with cache provenance,
//	                           pattern iterations, and the live serving status
//	GET  /healthz              liveness + health/breaker/latency summary (always 200)
//	GET  /readyz               readiness (503 while loading, draining, or breaker open)
//	GET  /metricz              full metrics registry as JSON
//	GET  /metrics              Prometheus text exposition (labeled by design)
//	GET  /debug/slowlog        recent slow or trace-sampled queries, newest first
//	GET  /version              build info, design hash, config fingerprint
//
// Exit codes: 0 clean shutdown (including SIGTERM/SIGINT drain), 1 startup or
// serve failure, 2 flag errors, 3 cancelled during initial analysis.
//
// Usage:
//
//	paoserve -case pao_test1 -scale 0.05 [-addr :8347] [-snapshot oracle.snap]
//	paoserve -lef design.lef -def design.def [-snapshot oracle.snap]
//	         [-rate 100 -burst 20] [-max-inflight 8 -queue 64]
//	         [-request-timeout 2s] [-snapshot-interval 5m] [-drain-timeout 10s]
//	         [-breaker-threshold 3 -breaker-cooldown 30s] [-k 3] [-workers 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/db"
	"repro/internal/def"
	"repro/internal/lef"
	"repro/internal/obs"
	"repro/internal/pao"
	"repro/internal/serve"
	"repro/internal/suite"
	"repro/internal/telemetry"
)

// options holds the parsed command line; parseFlags keeps it testable with
// an injected FlagSet and argument list.
type options struct {
	caseName string
	scale    float64
	seed     int64

	lefPath, defPath string

	addr             string
	snapshotPath     string
	snapshotInterval time.Duration
	maxInFlight      int
	queue            int
	rate             float64
	burst            int
	requestTimeout   time.Duration
	drainTimeout     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration

	traceSample   float64
	slowlogSize   int
	slowThreshold time.Duration
	logLevel      string

	k, workers int
	run        *cliutil.RunFlags
	obs        *obs.Flags

	log io.Writer // operational log; nil means os.Stderr

	// onReady, when set (tests), is called with the started server after it
	// begins listening.
	onReady func(s *serve.Server)
	// paoFaultHook, when set (tests), is installed as the server's pipeline
	// fault hook before Init.
	paoFaultHook func(site, detail string)
}

func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.StringVar(&o.caseName, "case", "", "suite testcase to generate and serve (e.g. pao_test1)")
	fs.Float64Var(&o.scale, "scale", 0.05, "testcase scale factor for -case")
	fs.Int64Var(&o.seed, "seed", 0, "testcase seed override for -case (0 keeps the spec's seed)")
	fs.StringVar(&o.lefPath, "lef", "", "LEF file (alternative to -case)")
	fs.StringVar(&o.defPath, "def", "", "DEF file (alternative to -case)")
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8347", "listen address (use :0 for an ephemeral port)")
	fs.StringVar(&o.snapshotPath, "snapshot", "", "snapshot file for crash-safe persistence (empty disables)")
	fs.DurationVar(&o.snapshotInterval, "snapshot-interval", 0, "periodic snapshot interval (0: only on shutdown)")
	fs.IntVar(&o.maxInFlight, "max-inflight", 0, "max concurrently executing queries (0: NumCPU)")
	fs.IntVar(&o.queue, "queue", 64, "max queries waiting for a slot before shedding 503 (-1: unbounded)")
	fs.Float64Var(&o.rate, "rate", 0, "query rate limit per second (0 disables; excess sheds 429)")
	fs.IntVar(&o.burst, "burst", 1, "rate limiter burst size")
	fs.DurationVar(&o.requestTimeout, "request-timeout", 5*time.Second, "per-request deadline incl. queue wait (0 disables)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
	fs.IntVar(&o.breakerThreshold, "breaker-threshold", 3, "consecutive failures that trip the re-analysis breaker")
	fs.DurationVar(&o.breakerCooldown, "breaker-cooldown", 30*time.Second, "breaker open duration before a probe")
	fs.Float64Var(&o.traceSample, "trace-sample", 0, "fraction of queries that record a span-tree exemplar in /debug/slowlog (0..1)")
	fs.IntVar(&o.slowlogSize, "slowlog", 128, "slow-query log capacity")
	fs.DurationVar(&o.slowThreshold, "slow-threshold", 100*time.Millisecond, "latency at which a query enters the slow log")
	fs.StringVar(&o.logLevel, "log-level", "info", "structured log level: debug, info, warn, error")
	fs.IntVar(&o.k, "k", 3, "target access points per pin")
	fs.IntVar(&o.workers, "workers", 0, "analysis worker goroutines (0: NumCPU via pao default)")
	o.run = cliutil.RegisterRunFlags(fs)
	o.obs = obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	haveCase := o.caseName != ""
	haveFiles := o.lefPath != "" && o.defPath != ""
	if haveCase == haveFiles {
		return nil, fmt.Errorf("exactly one of -case or -lef/-def is required")
	}
	if o.traceSample < 0 || o.traceSample > 1 {
		return nil, fmt.Errorf("-trace-sample %v out of range [0,1]", o.traceSample)
	}
	if _, err := telemetry.ParseLevel(o.logLevel); err != nil {
		return nil, err
	}
	return o, nil
}

func main() {
	opts, err := parseFlags(flag.NewFlagSet("paoserve", flag.ExitOnError), os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "paoserve:", err)
		os.Exit(2)
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "paoserve:", err)
		os.Exit(cliutil.ExitCode(err))
	}
}

func loadDesign(opts *options) (*db.Design, error) {
	if opts.caseName != "" {
		spec, err := suite.ByName(opts.caseName)
		if err != nil {
			return nil, err
		}
		spec = spec.Scale(opts.scale)
		if opts.seed != 0 {
			spec = spec.WithSeed(opts.seed)
		}
		return suite.Generate(spec)
	}
	lf, err := os.Open(opts.lefPath)
	if err != nil {
		return nil, err
	}
	defer lf.Close()
	lib, err := lef.Parse(lf)
	if err != nil {
		return nil, err
	}
	df, err := os.Open(opts.defPath)
	if err != nil {
		return nil, err
	}
	defer df.Close()
	return def.Parse(df, lib.Tech, lib.Masters)
}

func run(opts *options) error {
	ctx, stop := opts.run.Context()
	defer stop()
	logw := opts.log
	if logw == nil {
		logw = os.Stderr
	}
	lvl, err := telemetry.ParseLevel(opts.logLevel)
	if err != nil {
		return err
	}
	logger := telemetry.NewLogger(logw, "paoserve", lvl)
	o, finish, err := opts.obs.Start("paoserve")
	if err != nil {
		return err
	}

	d, err := loadDesign(opts)
	if err != nil {
		return err
	}

	paoCfg := pao.DefaultConfig()
	paoCfg.K = opts.k
	paoCfg.Workers = opts.workers
	paoCfg.FailFast = opts.run.FailFastSet()

	srv := serve.New(d, paoCfg, serve.Config{
		Addr:             opts.addr,
		MaxInFlight:      opts.maxInFlight,
		QueueDepth:       opts.queue,
		RequestTimeout:   opts.requestTimeout,
		RatePerSec:       opts.rate,
		Burst:            opts.burst,
		SnapshotPath:     opts.snapshotPath,
		SnapshotInterval: opts.snapshotInterval,
		BreakerThreshold: opts.breakerThreshold,
		BreakerCooldown:  opts.breakerCooldown,
		DrainTimeout:     opts.drainTimeout,
		TraceSample:      opts.traceSample,
		SlowLogSize:      opts.slowlogSize,
		SlowThreshold:    opts.slowThreshold,
	})
	srv.Logger = logger
	if o != nil {
		srv.Obs = o
	}
	srv.PaoFaultHook = opts.paoFaultHook

	// Warm restart or first compute. A signal here aborts startup (exit 3):
	// there is nothing to drain yet.
	if err := srv.Init(ctx); err != nil {
		finish()
		return err
	}
	if err := srv.Start(); err != nil {
		finish()
		return err
	}
	logger.Info("serving", append(telemetry.Build().Fields(),
		telemetry.F("design", d.Name),
		telemetry.F("design_hash", pao.DesignHash(d)),
		telemetry.F("config", pao.ConfigFingerprint(paoCfg)),
		telemetry.F("source", srv.Source()),
		telemetry.F("addr", srv.Addr()),
		telemetry.F("trace_sample", opts.traceSample),
	)...)
	if opts.onReady != nil {
		opts.onReady(srv)
	}

	// Serve until SIGINT/SIGTERM (or -timeout). The drain + final snapshot
	// run on a fresh context: the triggering signal already cancelled ctx.
	<-ctx.Done()
	logger.Info("shutdown requested, draining")
	sdErr := srv.Shutdown(context.Background())
	if err := finish(); err != nil && sdErr == nil {
		sdErr = err
	}
	if sdErr != nil {
		return sdErr
	}
	logger.Info("clean shutdown")
	return nil
}
