// Command paoserve runs the pin access oracle as a resident multi-design
// HTTP/JSON server: optionally load (or generate) an initial design, then
// serve a registry where designs are added and removed at runtime, each
// behind its own fault-isolation bulkhead (breaker, admission queue,
// per-tenant rate limits, snapshot). Requests carry an optional tenant ID
// (X-Tenant-Id header or ?tenant=) for per-tenant fairness, and a design
// scope (?design= or X-Design) when more than one design is resident.
//
// Endpoints:
//
//	POST   /v1/designs             register a design (suite case, inline
//	                               LEF/DEF, or uploaded snapshot; 201/400/409/413/422)
//	GET    /v1/designs             list designs with state and health
//	GET    /v1/designs/{id}        one design's state
//	DELETE /v1/designs/{id}        unregister (waits out in-flight queries)
//	POST   /v1/designs/{id}/evict  snapshot + release a design's result now
//	GET    /v1/access?inst=NAME    access pattern for one instance (200; degraded
//	                               classes answer "degraded": true, never 500;
//	                               404 unknown; 429/503 shed; 202 while warming)
//	POST   /v1/access/batch        N instances in one request, admission-charged
//	                               per instance
//	GET    /v1/access/explain      decision audit for one pin (?inst=&pin=)
//	GET    /v1/stats               analysis stats and health summary
//	POST   /v1/reanalyze           start one background re-analysis
//	POST   /v1/eco                 incremental ECO transaction
//	GET    /healthz                liveness + per-design health (always 200)
//	GET    /readyz                 process readiness; ?design= for one design's
//	GET    /metricz                metrics registries as JSON
//	GET    /metrics                Prometheus text exposition (design/tenant labels)
//	GET    /debug/slowlog          recent slow queries (?design= when ambiguous)
//	GET    /version                build info + per-design hashes
//
// Exit codes: 0 clean shutdown (including SIGTERM/SIGINT drain), 1 startup or
// serve failure, 2 flag errors, 3 cancelled during initial analysis.
//
// Usage:
//
//	paoserve -case pao_test1 -scale 0.05 [-addr :8347] [-snapshot oracle.snap]
//	paoserve -lef design.lef -def design.def [-snapshot oracle.snap]
//	paoserve -addr :8347 -snapshot-dir /var/lib/pao -max-resident 4   # empty start
//	         [-rate 100 -burst 20] [-max-inflight 8 -queue 64]
//	         [-request-timeout 2s] [-snapshot-interval 5m] [-drain-timeout 10s]
//	         [-breaker-threshold 3 -breaker-cooldown 30s] [-warm-wait 2s]
//	         [-max-upload 33554432] [-k 3] [-workers 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/db"
	"repro/internal/def"
	"repro/internal/lef"
	"repro/internal/obs"
	"repro/internal/pao"
	"repro/internal/serve"
	"repro/internal/suite"
	"repro/internal/telemetry"
)

// options holds the parsed command line; parseFlags keeps it testable with
// an injected FlagSet and argument list.
type options struct {
	caseName string
	scale    float64
	seed     int64

	lefPath, defPath string

	addr             string
	snapshotPath     string
	snapshotInterval time.Duration
	snapshotDir      string
	maxResident      int
	warmWait         time.Duration
	maxUpload        int64
	maxInFlight      int
	queue            int
	rate             float64
	burst            int
	requestTimeout   time.Duration
	drainTimeout     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration

	traceSample   float64
	slowlogSize   int
	slowThreshold time.Duration
	logLevel      string

	k, workers int
	run        *cliutil.RunFlags
	obs        *obs.Flags

	log io.Writer // operational log; nil means os.Stderr

	// onReady, when set (tests), is called with the started manager after it
	// begins listening.
	onReady func(m *serve.Manager)
	// paoFaultHook, when set (tests), is installed as every design's pipeline
	// fault hook.
	paoFaultHook func(site, detail string)
}

func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.StringVar(&o.caseName, "case", "", "suite testcase to generate and serve initially (e.g. pao_test1)")
	fs.Float64Var(&o.scale, "scale", 0.05, "testcase scale factor for -case")
	fs.Int64Var(&o.seed, "seed", 0, "testcase seed override for -case (0 keeps the spec's seed)")
	fs.StringVar(&o.lefPath, "lef", "", "LEF file (alternative to -case)")
	fs.StringVar(&o.defPath, "def", "", "DEF file (alternative to -case)")
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8347", "listen address (use :0 for an ephemeral port)")
	fs.StringVar(&o.snapshotPath, "snapshot", "", "snapshot file for the initial design (empty: derive from -snapshot-dir)")
	fs.DurationVar(&o.snapshotInterval, "snapshot-interval", 0, "periodic snapshot interval (0: only on shutdown/evict)")
	fs.StringVar(&o.snapshotDir, "snapshot-dir", "", "directory for per-design eviction snapshots (empty: evicted designs recompute)")
	fs.IntVar(&o.maxResident, "max-resident", 0, "resident-design budget; coldest design evicts past it (0: unlimited)")
	fs.DurationVar(&o.warmWait, "warm-wait", 2*time.Second, "how long a query blocks for a lazy warm restart before 202 (0: immediate 202)")
	fs.Int64Var(&o.maxUpload, "max-upload", 32<<20, "max POST /v1/designs body bytes")
	fs.IntVar(&o.maxInFlight, "max-inflight", 0, "max concurrently executing queries per design (0: NumCPU)")
	fs.IntVar(&o.queue, "queue", 64, "max queries waiting for a slot before shedding 503 (-1: unbounded)")
	fs.Float64Var(&o.rate, "rate", 0, "per-tenant query rate limit per second (0 disables; excess sheds 429)")
	fs.IntVar(&o.burst, "burst", 1, "rate limiter burst size")
	fs.DurationVar(&o.requestTimeout, "request-timeout", 5*time.Second, "per-request deadline incl. queue wait (0 disables)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
	fs.IntVar(&o.breakerThreshold, "breaker-threshold", 3, "consecutive failures that trip a design's re-analysis breaker")
	fs.DurationVar(&o.breakerCooldown, "breaker-cooldown", 30*time.Second, "breaker open duration before a probe")
	fs.Float64Var(&o.traceSample, "trace-sample", 0, "fraction of queries that record a span-tree exemplar in /debug/slowlog (0..1)")
	fs.IntVar(&o.slowlogSize, "slowlog", 128, "slow-query log capacity per design")
	fs.DurationVar(&o.slowThreshold, "slow-threshold", 100*time.Millisecond, "latency at which a query enters the slow log")
	fs.StringVar(&o.logLevel, "log-level", "info", "structured log level: debug, info, warn, error")
	fs.IntVar(&o.k, "k", 3, "target access points per pin")
	fs.IntVar(&o.workers, "workers", 0, "analysis worker goroutines (0: NumCPU via pao default)")
	o.run = cliutil.RegisterRunFlags(fs)
	o.obs = obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	haveCase := o.caseName != ""
	haveFiles := o.lefPath != "" || o.defPath != ""
	// No initial design is fine — the registry starts empty and designs
	// arrive via POST /v1/designs — but mixed or half-specified sources are
	// still an error.
	if haveCase && haveFiles {
		return nil, fmt.Errorf("-case and -lef/-def are mutually exclusive")
	}
	if haveFiles && (o.lefPath == "" || o.defPath == "") {
		return nil, fmt.Errorf("-lef and -def must both be provided")
	}
	if o.snapshotPath != "" && !haveCase && !haveFiles {
		return nil, fmt.Errorf("-snapshot requires an initial design (-case or -lef/-def)")
	}
	if o.traceSample < 0 || o.traceSample > 1 {
		return nil, fmt.Errorf("-trace-sample %v out of range [0,1]", o.traceSample)
	}
	if _, err := telemetry.ParseLevel(o.logLevel); err != nil {
		return nil, err
	}
	return o, nil
}

func main() {
	opts, err := parseFlags(flag.NewFlagSet("paoserve", flag.ExitOnError), os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "paoserve:", err)
		os.Exit(2)
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "paoserve:", err)
		os.Exit(cliutil.ExitCode(err))
	}
}

// hasInitialDesign reports whether the flags name a design to load at boot.
func (o *options) hasInitialDesign() bool {
	return o.caseName != "" || o.lefPath != ""
}

func loadDesign(opts *options) (*db.Design, error) {
	if opts.caseName != "" {
		spec, err := suite.ByName(opts.caseName)
		if err != nil {
			return nil, err
		}
		spec = spec.Scale(opts.scale)
		if opts.seed != 0 {
			spec = spec.WithSeed(opts.seed)
		}
		return suite.Generate(spec)
	}
	lf, err := os.Open(opts.lefPath)
	if err != nil {
		return nil, err
	}
	defer lf.Close()
	lib, err := lef.Parse(lf)
	if err != nil {
		return nil, err
	}
	df, err := os.Open(opts.defPath)
	if err != nil {
		return nil, err
	}
	defer df.Close()
	return def.Parse(df, lib.Tech, lib.Masters)
}

func run(opts *options) error {
	ctx, stop := opts.run.Context()
	defer stop()
	logw := opts.log
	if logw == nil {
		logw = os.Stderr
	}
	lvl, err := telemetry.ParseLevel(opts.logLevel)
	if err != nil {
		return err
	}
	logger := telemetry.NewLogger(logw, "paoserve", lvl)
	o, finish, err := opts.obs.Start("paoserve")
	if err != nil {
		return err
	}

	paoCfg := pao.DefaultConfig()
	paoCfg.K = opts.k
	paoCfg.Workers = opts.workers
	paoCfg.FailFast = opts.run.FailFastSet()

	mgr := serve.NewManager(paoCfg, serve.ManagerConfig{
		Addr: opts.addr,
		Design: serve.Config{
			MaxInFlight:      opts.maxInFlight,
			QueueDepth:       opts.queue,
			RequestTimeout:   opts.requestTimeout,
			RatePerSec:       opts.rate,
			Burst:            opts.burst,
			SnapshotInterval: opts.snapshotInterval,
			BreakerThreshold: opts.breakerThreshold,
			BreakerCooldown:  opts.breakerCooldown,
			DrainTimeout:     opts.drainTimeout,
			TraceSample:      opts.traceSample,
			SlowLogSize:      opts.slowlogSize,
			SlowThreshold:    opts.slowThreshold,
		},
		MaxResident:    opts.maxResident,
		SnapshotDir:    opts.snapshotDir,
		WarmWait:       opts.warmWait,
		MaxUploadBytes: opts.maxUpload,
		DrainTimeout:   opts.drainTimeout,
	})
	mgr.Logger = logger
	if o != nil {
		mgr.Obs = o
	}
	mgr.PaoFaultHook = opts.paoFaultHook

	// The initial design (when flagged) registers under its own name, keeping
	// the single-design deployment shape — and its PR-4 snapshots — working
	// unchanged. A signal here aborts startup (exit 3): nothing to drain yet.
	serving := telemetry.Build().Fields()
	if opts.hasInitialDesign() {
		d, err := loadDesign(opts)
		if err != nil {
			finish()
			return err
		}
		srv, err := mgr.RegisterDesign(ctx, d.Name, d, paoCfg,
			&serve.RegisterOptions{SnapshotPath: opts.snapshotPath})
		if err != nil {
			finish()
			return err
		}
		serving = append(serving,
			telemetry.F("design", d.Name),
			telemetry.F("design_hash", pao.DesignHash(d)),
			telemetry.F("config", pao.ConfigFingerprint(paoCfg)),
			telemetry.F("source", srv.Source()),
			telemetry.F("trace_sample", opts.traceSample),
		)
	}
	if err := mgr.Start(); err != nil {
		finish()
		return err
	}
	serving = append(serving, telemetry.F("addr", mgr.Addr()))
	logger.Info("serving", serving...)
	if opts.onReady != nil {
		opts.onReady(mgr)
	}

	// Serve until SIGINT/SIGTERM (or -timeout). The drain + final snapshots
	// run on a fresh context: the triggering signal already cancelled ctx.
	<-ctx.Done()
	logger.Info("shutdown requested, draining")
	sdErr := mgr.Shutdown(context.Background())
	if err := finish(); err != nil && sdErr == nil {
		sdErr = err
	}
	if sdErr != nil {
		return sdErr
	}
	logger.Info("clean shutdown")
	return nil
}
