package main

// TestTenantSmoke is the end-to-end scenario behind `make tenant-smoke`: one
// paoserve process serving three designs — one loaded at boot, two registered
// over POST /v1/designs — takes a flood-tenant storm into the deliberately
// tight bulkhead of one design while a steady tenant keeps querying the other
// two. The storm must shed (429/503, never 500) strictly inside its bulkhead:
// every steady query answers 200, every design stays ready, and the merged
// /metrics exposition parses strictly with per-design and per-tenant labels.
// Then an explicit evict + lazy warm restart must answer byte-identically,
// and SIGTERM must drain and snapshot every resident design.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/suite"
	"repro/internal/telemetry"
)

// postJSON fires a JSON POST and returns status + body.
func postJSON(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// getCode fires a GET with optional tenant header and returns the status.
func getCode(t *testing.T, url, tenant string) int {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	if tenant != "" {
		req.Header.Set("X-Tenant-Id", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// queryDesign fetches one instance's answer with the design scope and tenant
// set, normalizing Source for across-restart comparison.
func queryDesign(t *testing.T, base, design, tenant, inst string) serve.QueryResponse {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet,
		base+"/v1/access?design="+design+"&inst="+inst, nil)
	req.Header.Set("X-Tenant-Id", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("query %s/%s = %d: %s", design, inst, resp.StatusCode, body)
	}
	var qr serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	qr.Source = ""
	return qr
}

func scrapeProm(t *testing.T, base string) *telemetry.PromScrape {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	scrape, err := telemetry.CheckProm(resp.Body)
	if err != nil {
		t.Fatalf("strict prometheus check failed: %v", err)
	}
	return scrape
}

func TestTenantSmoke(t *testing.T) {
	// Local replicas of all three designs, for instance names.
	spec := suite.Testcases[0].Scale(0.01)
	d0, err := suite.Generate(spec.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	dCalm, err := suite.Generate(spec.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	dStorm, err := suite.Generate(spec.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	snapDir := t.TempDir()

	ready := make(chan *serve.Manager, 1)
	opts := &options{
		caseName: "pao_test1", scale: 0.01, seed: 7,
		addr: "127.0.0.1:0", snapshotDir: snapDir,
		queue: 64, requestTimeout: 10 * time.Second, drainTimeout: 10 * time.Second,
		breakerThreshold: 3, breakerCooldown: 30 * time.Second,
		warmWait: 5 * time.Second, maxUpload: 32 << 20,
		k: 3, obs: &obs.Flags{},
		log:     io.Discard,
		onReady: func(m *serve.Manager) { ready <- m },
	}
	done := make(chan error, 1)
	go func() { done <- run(opts) }()
	mgr := <-ready
	base := "http://" + mgr.Addr()

	// Register two more designs at runtime. "storm" gets a deliberately tiny
	// bulkhead (one slot, no queue, tight rate) so the flood must shed there.
	code, body := postJSON(t, base+"/v1/designs",
		[]byte(`{"id":"calm2","case":"pao_test1","scale":0.01,"seed":11}`))
	if code != http.StatusCreated {
		t.Fatalf("register calm2 = %d: %s", code, body)
	}
	code, body = postJSON(t, base+"/v1/designs",
		[]byte(`{"id":"storm","case":"pao_test1","scale":0.01,"seed":13,"max_inflight":1,"queue":0,"rate":25,"burst":2}`))
	if code != http.StatusCreated {
		t.Fatalf("register storm = %d: %s", code, body)
	}

	// Storm: a flood tenant hammers "storm"'s tiny bulkhead while a steady
	// tenant queries the other two designs. Sheds (429/503) must stay inside
	// the storm bulkhead; the steady tenant sees only 200s.
	var wg sync.WaitGroup
	var mu sync.Mutex
	shed, floodErrs, steadyBad := 0, 0, 0
	const floodWorkers, floodIters = 8, 30
	for w := 0; w < floodWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < floodIters; i++ {
				inst := dStorm.Instances[(w*floodIters+i)%len(dStorm.Instances)]
				switch getCode(t, base+"/v1/access?design=storm&inst="+inst.Name, "flood") {
				case http.StatusOK:
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					mu.Lock()
					shed++
					mu.Unlock()
				default:
					mu.Lock()
					floodErrs++
					mu.Unlock()
				}
			}
		}(w)
	}
	const steadyIters = 25
	for _, target := range []struct {
		id string
		d  *db.Design
	}{{d0.Name, d0}, {"calm2", dCalm}} {
		target := target
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < steadyIters; i++ {
				inst := target.d.Instances[i%len(target.d.Instances)]
				if code := getCode(t, base+"/v1/access?design="+target.id+"&inst="+inst.Name, "steady"); code != http.StatusOK {
					mu.Lock()
					steadyBad++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if floodErrs > 0 {
		t.Fatalf("flood saw %d unexpected statuses (want only 200/429/503)", floodErrs)
	}
	if shed == 0 {
		t.Fatal("flood was never shed; the storm bulkhead is not limiting")
	}
	if steadyBad > 0 {
		t.Fatalf("steady tenant saw %d non-200s during the storm (bulkhead leak)", steadyBad)
	}

	// Every design — including the stormed one — is still ready, and so is
	// the process.
	for _, id := range []string{d0.Name, "calm2", "storm"} {
		if code := getCode(t, base+"/readyz?design="+id, ""); code != http.StatusOK {
			t.Fatalf("readyz?design=%s = %d after storm", id, code)
		}
	}
	if code := getCode(t, base+"/readyz", ""); code != http.StatusOK {
		t.Fatal("process readyz not 200 after storm")
	}

	// The merged exposition parses strictly and carries the per-design and
	// per-tenant series the storm just exercised.
	scrape := scrapeProm(t, base)
	if v := scrape.Series[fmt.Sprintf("serve_tenant_shed_total{design=%q,tenant=%q}", "storm", "flood")]; int(v) != shed {
		t.Fatalf("serve_tenant_shed_total{storm,flood} = %v, want %d", v, shed)
	}
	if v := scrape.Series[fmt.Sprintf("serve_tenant_admitted_total{design=%q,tenant=%q}", "calm2", "steady")]; v < steadyIters {
		t.Fatalf("serve_tenant_admitted_total{calm2,steady} = %v, want >= %d", v, steadyIters)
	}
	if v := scrape.Series[fmt.Sprintf("pao_queries_total{design=%q,status=%q}", d0.Name, "ok")]; v < steadyIters {
		t.Fatalf("pao_queries_total{%s,ok} = %v, want >= %d", d0.Name, v, steadyIters)
	}
	if v := scrape.Series["serve_resident_designs"]; v != 3 {
		t.Fatalf("serve_resident_designs = %v, want 3", v)
	}

	// Explicit evict + lazy warm restart must not change a single answer.
	probe := []string{dCalm.Instances[0].Name, dCalm.Instances[1].Name, dCalm.Instances[2].Name}
	before := make(map[string]serve.QueryResponse, len(probe))
	for _, inst := range probe {
		before[inst] = queryDesign(t, base, "calm2", "steady", inst)
	}
	resp, err := http.Post(base+"/v1/designs/calm2/evict", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evict calm2 = %d", resp.StatusCode)
	}
	for _, inst := range probe {
		after := queryDesign(t, base, "calm2", "steady", inst)
		if !reflect.DeepEqual(before[inst], after) {
			a, _ := json.Marshal(before[inst])
			b, _ := json.Marshal(after)
			t.Fatalf("%s: answer changed across evict/warm-restart:\n%s\n%s", inst, a, b)
		}
	}
	if src := mgr.ServerFor("calm2").Source(); src != "snapshot" {
		t.Fatalf("calm2 source after warm restart = %q, want snapshot", src)
	}
	scrape = scrapeProm(t, base)
	if v := scrape.Series["serve_evictions_total"]; v < 1 {
		t.Fatalf("serve_evictions_total = %v, want >= 1", v)
	}
	if v := scrape.Series["serve_warm_restarts_total"]; v < 1 {
		t.Fatalf("serve_warm_restarts_total = %v, want >= 1", v)
	}

	// SIGTERM: drain, snapshot every resident design, exit clean.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	for _, id := range []string{d0.Name, "calm2", "storm"} {
		snap := filepath.Join(snapDir, id+".snap")
		if _, err := os.Stat(snap); err != nil {
			t.Fatalf("design %s has no shutdown snapshot: %v", id, err)
		}
	}
}
