package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/pao"
	"repro/internal/serve"
	"repro/internal/suite"
	"repro/internal/telemetry"
)

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("paoserve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestParseFlags(t *testing.T) {
	// No initial design is allowed now: the registry starts empty and designs
	// arrive over POST /v1/designs.
	if o, err := parseFlags(newFlagSet(), nil); err != nil {
		t.Fatalf("empty registry start must parse: %v", err)
	} else if o.hasInitialDesign() {
		t.Fatal("no flags must mean no initial design")
	}
	if _, err := parseFlags(newFlagSet(), []string{"-case", "pao_test1", "-lef", "a.lef", "-def", "a.def"}); err == nil {
		t.Fatal("both -case and -lef/-def must be an error")
	}
	if _, err := parseFlags(newFlagSet(), []string{"-lef", "a.lef"}); err == nil {
		t.Fatal("-lef without -def must be an error")
	}
	if _, err := parseFlags(newFlagSet(), []string{"-snapshot", "s.snap"}); err == nil {
		t.Fatal("-snapshot without an initial design must be an error")
	}
	o, err := parseFlags(newFlagSet(), []string{"-case", "pao_test1"})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:8347" || o.queue != 64 || o.breakerThreshold != 3 ||
		o.requestTimeout != 5*time.Second || o.rate != 0 {
		t.Errorf("defaults wrong: %+v", o)
	}
	o, err = parseFlags(newFlagSet(), []string{
		"-case", "pao_test2", "-scale", "0.02", "-seed", "9", "-addr", "127.0.0.1:0",
		"-snapshot", "s.snap", "-snapshot-interval", "1m", "-rate", "50", "-burst", "5",
		"-queue", "8", "-max-inflight", "2", "-breaker-threshold", "1", "-breaker-cooldown", "5s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.caseName != "pao_test2" || o.seed != 9 || o.snapshotPath != "s.snap" ||
		o.snapshotInterval != time.Minute || o.rate != 50 || o.burst != 5 ||
		o.queue != 8 || o.maxInFlight != 2 || o.breakerThreshold != 1 {
		t.Errorf("parsed values wrong: %+v", o)
	}
}

func TestLoadDesignBadInputs(t *testing.T) {
	if _, err := loadDesign(&options{caseName: "nope"}); err == nil {
		t.Fatal("unknown case must be an error")
	}
	if _, err := loadDesign(&options{lefPath: "/nonexistent.lef", defPath: "/nonexistent.def"}); err == nil {
		t.Fatal("missing LEF must be an error")
	}
}

// smokeOptions is the shared server setup of the smoke test: a small suite
// testcase, ephemeral port, snapshotting on, admission bounds tight enough to
// be real but loose enough not to shed the test's own queries.
func smokeOptions(snap string, ready chan *serve.Manager) *options {
	return &options{
		caseName: "pao_test1", scale: 0.01, seed: 7,
		addr: "127.0.0.1:0", snapshotPath: snap,
		queue: 64, requestTimeout: 10 * time.Second, drainTimeout: 10 * time.Second,
		breakerThreshold: 3, breakerCooldown: 30 * time.Second,
		warmWait: 2 * time.Second,
		k:        3, obs: &obs.Flags{},
		log:     io.Discard,
		onReady: func(m *serve.Manager) { ready <- m },
	}
}

func queryAll(t *testing.T, base string, insts []string) map[string]serve.QueryResponse {
	t.Helper()
	out := make(map[string]serve.QueryResponse, len(insts))
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, len(insts))
	for _, name := range insts {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			resp, err := http.Get(base + "/v1/access?inst=" + name)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				errs <- fmt.Errorf("%s: status %d: %s", name, resp.StatusCode, body)
				return
			}
			var qr serve.QueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				errs <- fmt.Errorf("%s: %v", name, err)
				return
			}
			qr.Source = "" // provenance legitimately differs across restarts
			mu.Lock()
			out[name] = qr
			mu.Unlock()
		}(name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return out
}

// TestServeSmokeSIGTERMWarmRestart is the end-to-end acceptance scenario
// behind `make serve-smoke`: start the server on a suite testcase with one
// class quarantined by an injected fault, run concurrent queries (including
// the degraded class — 200s, never 500s), deliver a real SIGTERM, verify the
// clean drain + final snapshot, warm-restart a second server from that
// snapshot without recomputing, and require identical answers.
func TestServeSmokeSIGTERMWarmRestart(t *testing.T) {
	d, err := suite.Generate(suite.Testcases[0].Scale(0.01).WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	badSig := d.UniqueInstances()[0].Signature()
	var insts, badInsts []string
	for _, inst := range d.Instances {
		if len(insts) < 12 {
			insts = append(insts, inst.Name)
		}
		if d.InstanceSignature(inst) == badSig && len(badInsts) < 3 {
			badInsts = append(badInsts, inst.Name)
		}
	}
	insts = append(insts, badInsts...)
	snap := filepath.Join(t.TempDir(), "oracle.snap")

	// First server: quarantine badSig via an injected pipeline panic.
	ready := make(chan *serve.Manager, 1)
	opts := smokeOptions(snap, ready)
	inj := faultinject.New().Add(&faultinject.Fault{
		Site: pao.SiteAnalyzeUnique, Detail: badSig, Kind: faultinject.Panic, Note: "smoke",
	})
	opts.paoFaultHook = inj.SiteHook()
	done := make(chan error, 1)
	go func() { done <- run(opts) }()
	mgr1 := <-ready
	base1 := "http://" + mgr1.Addr()

	first := queryAll(t, base1, insts)
	for _, name := range badInsts {
		if qr := first[name]; !qr.Degraded {
			t.Fatalf("%s (quarantined class) not marked degraded: %+v", name, qr)
		}
	}

	// Real SIGTERM: drain, final snapshot, exit 0.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM shutdown returned %v, want nil (exit 0)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("no final snapshot after SIGTERM: %v", err)
	}

	// Second server: must warm-restart from the snapshot (no fault hook
	// needed — the quarantine is persisted state) and answer identically.
	ready2 := make(chan *serve.Manager, 1)
	opts2 := smokeOptions(snap, ready2)
	done2 := make(chan error, 1)
	go func() { done2 <- run(opts2) }()
	mgr2 := <-ready2
	if src := mgr2.ServerFor(d.Name).Source(); src != "snapshot" {
		t.Fatalf("second server source = %q, want snapshot", src)
	}
	second := queryAll(t, "http://"+mgr2.Addr(), insts)
	for _, name := range insts {
		if !reflect.DeepEqual(first[name], second[name]) {
			a, _ := json.Marshal(first[name])
			b, _ := json.Marshal(second[name])
			t.Fatalf("%s: answer changed across warm restart:\n%s\n%s", name, a, b)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("second shutdown returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("second server did not drain")
	}
}

// syncBuffer collects the server's structured log under a lock so the test
// can read it while the server is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTelemetrySmoke is the end-to-end scenario behind `make telemetry-smoke`:
// boot the server with tracing on, fire concurrent queries (correlation IDs
// attached) while scraping /metrics, and require that every scrape parses
// under the strict Prometheus checker, the explain endpoint audits a real
// decision, the slow log carries trace exemplars, /version reports the build,
// and the startup log line is valid structured JSON.
func TestTelemetrySmoke(t *testing.T) {
	d, err := suite.Generate(suite.Testcases[0].Scale(0.01).WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	var logbuf syncBuffer
	ready := make(chan *serve.Manager, 1)
	opts := &options{
		caseName: "pao_test1", scale: 0.01, seed: 7,
		addr:  "127.0.0.1:0",
		queue: 64, requestTimeout: 10 * time.Second, drainTimeout: 10 * time.Second,
		breakerThreshold: 3, breakerCooldown: 30 * time.Second,
		warmWait:    2 * time.Second,
		traceSample: 1, slowlogSize: 256, slowThreshold: time.Nanosecond,
		logLevel: "debug",
		k:        3, obs: &obs.Flags{},
		log:     &logbuf,
		onReady: func(m *serve.Manager) { ready <- m },
	}
	done := make(chan error, 1)
	go func() { done <- run(opts) }()
	mgr := <-ready
	base := "http://" + mgr.Addr()

	// Startup line: one JSON object with the build info and design identity.
	var startup map[string]any
	for _, line := range strings.Split(logbuf.String(), "\n") {
		if strings.Contains(line, `"msg":"serving"`) {
			if err := json.Unmarshal([]byte(line), &startup); err != nil {
				t.Fatalf("startup log line is not JSON: %v\n%s", err, line)
			}
		}
	}
	if startup == nil {
		t.Fatalf("no 'serving' startup log line:\n%s", logbuf.String())
	}
	for _, key := range []string{"go_version", "design", "design_hash", "config", "addr"} {
		if v, ok := startup[key].(string); !ok || v == "" {
			t.Fatalf("startup line missing %q: %v", key, startup)
		}
	}

	const workers, iters = 4, 20
	var wg sync.WaitGroup
	errc := make(chan error, 2*workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < iters; i++ {
				inst := d.Instances[(w*iters+i)%len(d.Instances)]
				req, _ := http.NewRequest(http.MethodGet, base+"/v1/access?inst="+inst.Name, nil)
				corr := fmt.Sprintf("smoke-%d-%d", w, i)
				req.Header.Set("X-Correlation-Id", corr)
				resp, err := client.Do(req)
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("query = %d", resp.StatusCode)
					return
				}
				if got := resp.Header.Get("X-Correlation-Id"); got != corr {
					errc <- fmt.Errorf("corr echo = %q, want %q", got, corr)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/2; i++ {
				resp, err := http.Get(base + "/metrics")
				if err != nil {
					errc <- err
					return
				}
				_, cerr := telemetry.CheckProm(resp.Body)
				resp.Body.Close()
				if cerr != nil {
					errc <- fmt.Errorf("scrape %d: %v", i, cerr)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Final scrape: every concurrent query must be accounted for.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, err := telemetry.CheckProm(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	okSeries := fmt.Sprintf("pao_queries_total{design=%q,status=%q}", d.Name, "ok")
	if got := scrape.Series[okSeries]; got < workers*iters {
		t.Fatalf("%s = %v, want >= %d", okSeries, got, workers*iters)
	}

	// Explain a real pin through the live server.
	inst := d.Instances[0]
	pin := inst.Master.SignalPins()[0].Name
	resp, err = http.Get(base + "/v1/access/explain?inst=" + inst.Name + "&pin=" + pin)
	if err != nil {
		t.Fatal(err)
	}
	var exp serve.ExplainResponse
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&exp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(exp.APs) == 0 || exp.Pin != pin {
		t.Fatalf("explain audit empty: %+v", exp)
	}

	// Slow log: everything was sampled, so entries carry trace exemplars.
	resp, err = http.Get(base + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	var slow telemetry.LogSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(slow.Entries) == 0 {
		t.Fatal("slow log empty after sampled queries")
	}
	for _, e := range slow.Entries {
		if e.Trace == nil || e.CorrID == "" {
			t.Fatalf("sampled slowlog entry lacks trace/corr: %+v", e)
		}
	}

	// Version: build identity plus the per-design registry.
	resp, err = http.Get(base + "/version")
	if err != nil {
		t.Fatal(err)
	}
	var ver struct {
		Build   telemetry.BuildInfo `json:"build"`
		Designs map[string]struct {
			DesignHash string `json:"design_hash"`
		} `json:"designs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ver); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ver.Designs[d.Name].DesignHash == "" || ver.Build.GoVersion == "" {
		t.Fatalf("bad /version: %+v", ver)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	if !strings.Contains(logbuf.String(), `"msg":"clean shutdown"`) {
		t.Fatalf("no clean-shutdown log line:\n%s", logbuf.String())
	}
}

// TestRunCancelledDuringInit: a deadline during the initial analysis aborts
// startup with the cancellation error (exit 3) instead of serving garbage.
func TestRunCancelledDuringInit(t *testing.T) {
	opts := &options{
		caseName: "pao_test1", scale: 0.01, seed: 7,
		addr: "127.0.0.1:0", queue: 64,
		obs: &obs.Flags{}, log: io.Discard,
	}
	opts.run = &cliutil.RunFlags{Timeout: time.Nanosecond}
	err := run(opts)
	if !cliutil.Cancelled(err) {
		t.Fatalf("err = %v, want a context cancellation", err)
	}
	if cliutil.ExitCode(err) != 3 {
		t.Fatalf("exit code = %d, want 3", cliutil.ExitCode(err))
	}
}
