package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/pao"
	"repro/internal/serve"
	"repro/internal/suite"
)

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("paoserve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestParseFlags(t *testing.T) {
	if _, err := parseFlags(newFlagSet(), nil); err == nil {
		t.Fatal("neither -case nor -lef/-def must be an error")
	}
	if _, err := parseFlags(newFlagSet(), []string{"-case", "pao_test1", "-lef", "a.lef", "-def", "a.def"}); err == nil {
		t.Fatal("both -case and -lef/-def must be an error")
	}
	if _, err := parseFlags(newFlagSet(), []string{"-lef", "a.lef"}); err == nil {
		t.Fatal("-lef without -def must be an error")
	}
	o, err := parseFlags(newFlagSet(), []string{"-case", "pao_test1"})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:8347" || o.queue != 64 || o.breakerThreshold != 3 ||
		o.requestTimeout != 5*time.Second || o.rate != 0 {
		t.Errorf("defaults wrong: %+v", o)
	}
	o, err = parseFlags(newFlagSet(), []string{
		"-case", "pao_test2", "-scale", "0.02", "-seed", "9", "-addr", "127.0.0.1:0",
		"-snapshot", "s.snap", "-snapshot-interval", "1m", "-rate", "50", "-burst", "5",
		"-queue", "8", "-max-inflight", "2", "-breaker-threshold", "1", "-breaker-cooldown", "5s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.caseName != "pao_test2" || o.seed != 9 || o.snapshotPath != "s.snap" ||
		o.snapshotInterval != time.Minute || o.rate != 50 || o.burst != 5 ||
		o.queue != 8 || o.maxInFlight != 2 || o.breakerThreshold != 1 {
		t.Errorf("parsed values wrong: %+v", o)
	}
}

func TestLoadDesignBadInputs(t *testing.T) {
	if _, err := loadDesign(&options{caseName: "nope"}); err == nil {
		t.Fatal("unknown case must be an error")
	}
	if _, err := loadDesign(&options{lefPath: "/nonexistent.lef", defPath: "/nonexistent.def"}); err == nil {
		t.Fatal("missing LEF must be an error")
	}
}

// smokeOptions is the shared server setup of the smoke test: a small suite
// testcase, ephemeral port, snapshotting on, admission bounds tight enough to
// be real but loose enough not to shed the test's own queries.
func smokeOptions(snap string, ready chan *serve.Server) *options {
	return &options{
		caseName: "pao_test1", scale: 0.01, seed: 7,
		addr: "127.0.0.1:0", snapshotPath: snap,
		queue: 64, requestTimeout: 10 * time.Second, drainTimeout: 10 * time.Second,
		breakerThreshold: 3, breakerCooldown: 30 * time.Second,
		k: 3, obs: &obs.Flags{},
		log:     io.Discard,
		onReady: func(s *serve.Server) { ready <- s },
	}
}

func queryAll(t *testing.T, base string, insts []string) map[string]serve.QueryResponse {
	t.Helper()
	out := make(map[string]serve.QueryResponse, len(insts))
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, len(insts))
	for _, name := range insts {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			resp, err := http.Get(base + "/v1/access?inst=" + name)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				errs <- fmt.Errorf("%s: status %d: %s", name, resp.StatusCode, body)
				return
			}
			var qr serve.QueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				errs <- fmt.Errorf("%s: %v", name, err)
				return
			}
			qr.Source = "" // provenance legitimately differs across restarts
			mu.Lock()
			out[name] = qr
			mu.Unlock()
		}(name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return out
}

// TestServeSmokeSIGTERMWarmRestart is the end-to-end acceptance scenario
// behind `make serve-smoke`: start the server on a suite testcase with one
// class quarantined by an injected fault, run concurrent queries (including
// the degraded class — 200s, never 500s), deliver a real SIGTERM, verify the
// clean drain + final snapshot, warm-restart a second server from that
// snapshot without recomputing, and require identical answers.
func TestServeSmokeSIGTERMWarmRestart(t *testing.T) {
	d, err := suite.Generate(suite.Testcases[0].Scale(0.01).WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	badSig := d.UniqueInstances()[0].Signature()
	var insts, badInsts []string
	for _, inst := range d.Instances {
		if len(insts) < 12 {
			insts = append(insts, inst.Name)
		}
		if d.InstanceSignature(inst) == badSig && len(badInsts) < 3 {
			badInsts = append(badInsts, inst.Name)
		}
	}
	insts = append(insts, badInsts...)
	snap := filepath.Join(t.TempDir(), "oracle.snap")

	// First server: quarantine badSig via an injected pipeline panic.
	ready := make(chan *serve.Server, 1)
	opts := smokeOptions(snap, ready)
	inj := faultinject.New().Add(&faultinject.Fault{
		Site: pao.SiteAnalyzeUnique, Detail: badSig, Kind: faultinject.Panic, Note: "smoke",
	})
	opts.paoFaultHook = inj.SiteHook()
	done := make(chan error, 1)
	go func() { done <- run(opts) }()
	srv1 := <-ready
	base1 := "http://" + srv1.Addr()

	first := queryAll(t, base1, insts)
	for _, name := range badInsts {
		if qr := first[name]; !qr.Degraded {
			t.Fatalf("%s (quarantined class) not marked degraded: %+v", name, qr)
		}
	}

	// Real SIGTERM: drain, final snapshot, exit 0.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM shutdown returned %v, want nil (exit 0)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("no final snapshot after SIGTERM: %v", err)
	}

	// Second server: must warm-restart from the snapshot (no fault hook
	// needed — the quarantine is persisted state) and answer identically.
	ready2 := make(chan *serve.Server, 1)
	opts2 := smokeOptions(snap, ready2)
	done2 := make(chan error, 1)
	go func() { done2 <- run(opts2) }()
	srv2 := <-ready2
	if srv2.Source() != "snapshot" {
		t.Fatalf("second server source = %q, want snapshot", srv2.Source())
	}
	second := queryAll(t, "http://"+srv2.Addr(), insts)
	for _, name := range insts {
		if !reflect.DeepEqual(first[name], second[name]) {
			a, _ := json.Marshal(first[name])
			b, _ := json.Marshal(second[name])
			t.Fatalf("%s: answer changed across warm restart:\n%s\n%s", name, a, b)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("second shutdown returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("second server did not drain")
	}
}

// TestRunCancelledDuringInit: a deadline during the initial analysis aborts
// startup with the cancellation error (exit 3) instead of serving garbage.
func TestRunCancelledDuringInit(t *testing.T) {
	opts := &options{
		caseName: "pao_test1", scale: 0.01, seed: 7,
		addr: "127.0.0.1:0", queue: 64,
		obs: &obs.Flags{}, log: io.Discard,
	}
	opts.run = &cliutil.RunFlags{Timeout: time.Nanosecond}
	err := run(opts)
	if !cliutil.Cancelled(err) {
		t.Fatalf("err = %v, want a context cancellation", err)
	}
	if cliutil.ExitCode(err) != 3 {
		t.Fatalf("exit code = %d, want 3", cliutil.ExitCode(err))
	}
}
